package lint

import (
	"go/ast"
	"go/types"
)

// ScratchAlias protects the append-into-caller-buffer contract that the
// implicit path machinery (PathSet.AppendLinks, FoldPVInto, the
// collector and psim linkBuf scratch) and the AllocsPerRun==0 gates
// depend on: a function that grows a caller-provided slice and hands it
// back must not also squirrel the buffer away somewhere that outlives
// the call. A retained alias turns the caller's reuse of its scratch
// into silent aliasing corruption — the retained copy mutates under
// whoever kept it — and forces defensive copies that break the
// zero-alloc budget.
//
// Scope: a function is an append-into-caller-buffer function when some
// slice parameter (or an alias of it: a reslice, an append result, or
// the result of a call the buffer was passed through) is appended to or
// returned. Within such a function, storing a buffer alias to a struct
// field, a package-level variable, a channel, a map or slice element of
// non-buffer storage, or a goroutine closure is a diagnostic. Returning
// the buffer is the contract, not an escape, and passing it to ordinary
// calls (sort.Slice, helper appenders) stays legal — the callee is
// analyzed under the same rule.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc: "forbid append-into-caller-buffer functions from storing the buffer to a " +
		"field, global, channel, element, or goroutine that outlives the call",
	Run: runScratchAlias,
}

func runScratchAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScratchFunc(pass, fd)
		}
	}
}

func checkScratchFunc(pass *Pass, fd *ast.FuncDecl) {
	params := sliceParamObjects(pass, fd)
	if len(params) == 0 {
		return
	}
	aliases := bufferAliases(pass, fd.Body, params)
	if !isBufferFunc(pass, fd.Body, aliases) {
		return
	}
	flagBufferEscapes(pass, fd.Body, aliases)
}

// sliceParamObjects collects the slice-typed parameters of fd (the
// candidate caller-owned buffers). The receiver is excluded: storing
// into one's own fields is the owner's business.
func sliceParamObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// bufferAliases computes the fixed point of locals that may share the
// buffer's backing array: reslices (buf[:0]), append results, and
// results of calls the buffer was passed through (the helper-appender
// idiom `buf = ps.AppendLinks(i, buf[:0])`). Aliases are only ever
// added, never killed — reassigning an alias to a fresh slice keeps it
// in the set, which over-approximates but cannot miss an escape.
func bufferAliases(pass *Pass, body *ast.BlockStmt, params map[types.Object]bool) map[types.Object]bool {
	aliases := make(map[types.Object]bool, len(params))
	for p := range params {
		aliases[p] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// Multi-value call: if the buffer flows in, every result
				// may alias it (FoldPVInto returns (pv, buf, err)).
				if aliasExpr(pass, as.Rhs[0], aliases) {
					for _, l := range as.Lhs {
						changed = addBufferAlias(pass, l, aliases) || changed
					}
				}
				return true
			}
			for i, l := range as.Lhs {
				if i < len(as.Rhs) && aliasExpr(pass, as.Rhs[i], aliases) {
					changed = addBufferAlias(pass, l, aliases) || changed
				}
			}
			return true
		})
	}
	return aliases
}

func addBufferAlias(pass *Pass, lhs ast.Expr, aliases map[types.Object]bool) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil || aliases[obj] {
		return false
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
		return false // only slice-typed locals can carry the backing array
	}
	aliases[obj] = true
	return true
}

// aliasExpr reports whether e's value may share the buffer's backing
// array: the alias itself, a reslice of it, or a call it was passed
// through (append, helper appenders). Element reads (buf[i]) do not
// qualify — they copy a value out.
func aliasExpr(pass *Pass, e ast.Expr, aliases map[types.Object]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(v)
		return obj != nil && aliases[obj]
	case *ast.ParenExpr:
		return aliasExpr(pass, v.X, aliases)
	case *ast.SliceExpr:
		return aliasExpr(pass, v.X, aliases)
	case *ast.UnaryExpr:
		return aliasExpr(pass, v.X, aliases)
	case *ast.CallExpr:
		if isBuiltin(pass, v.Fun, "append") {
			// append's result aliases its first argument; the variadic
			// tail is copied element-wise, never aliased.
			return len(v.Args) > 0 && aliasExpr(pass, v.Args[0], aliases)
		}
		if !sliceResult(pass, v) {
			// A scalar computed from the buffer (binary.Uint32(data),
			// len(buf), an error mentioning it) cannot carry the
			// backing array out.
			return false
		}
		for _, a := range v.Args {
			if aliasExpr(pass, a, aliases) {
				return true
			}
		}
	}
	return false
}

// sliceResult reports whether a call produces at least one slice-typed
// value — the only call results that can alias a buffer passed in.
func sliceResult(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return true // unresolvable: stay conservative
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if _, ok := tup.At(i).Type().Underlying().(*types.Slice); ok {
				return true
			}
		}
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isBufferFunc reports whether the function actually treats a slice
// parameter as a caller-owned scratch buffer: an alias is appended to,
// or an alias is returned. Functions that merely receive a slice
// (ownership transfer, read-only views) are out of scope.
func isBufferFunc(pass *Pass, body *ast.BlockStmt, aliases map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if aliasExpr(pass, r, aliases) {
					found = true
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass, v.Fun, "append") && len(v.Args) > 0 && aliasExpr(pass, v.Args[0], aliases) {
				found = true
			}
		}
		return !found
	})
	return found
}

func flagBufferEscapes(pass *Pass, body *ast.BlockStmt, aliases map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				var rhs ast.Expr
				switch {
				case len(v.Rhs) == 1 && len(v.Lhs) > 1:
					rhs = v.Rhs[0]
				case i < len(v.Rhs):
					rhs = v.Rhs[i]
				default:
					continue
				}
				sink := escapingLValue(pass, lhs, aliases)
				if sink == "" {
					continue
				}
				if aliasExpr(pass, rhs, aliases) || funcLitCapturing(pass, rhs, aliases) {
					pass.Reportf(v.Pos(),
						"caller-owned scratch buffer %s is stored to %s and outlives the call; copy the elements instead or justify with //dardlint:scratchalias",
						bufferName(pass, rhs, aliases), sink)
				}
			}
		case *ast.SendStmt:
			if aliasExpr(pass, v.Value, aliases) || funcLitCapturing(pass, v.Value, aliases) {
				pass.Reportf(v.Pos(),
					"caller-owned scratch buffer %s is sent on a channel and outlives the call; copy the elements instead or justify with //dardlint:scratchalias",
					bufferName(pass, v.Value, aliases))
			}
		case *ast.GoStmt:
			if goroutineCaptures(pass, v.Call, aliases) {
				pass.Reportf(v.Pos(),
					"caller-owned scratch buffer escapes into a goroutine that may outlive the call; copy the elements instead or justify with //dardlint:scratchalias")
			}
		}
		return true
	})
}

// escapingLValue classifies an assignment target that outlives the
// call: a struct field, a package-level variable, or an element of
// storage that is not itself the buffer. Rebinding a local or the
// parameter itself is the normal append idiom and stays legal.
func escapingLValue(pass *Pass, lhs ast.Expr, aliases map[types.Object]bool) string {
	for {
		switch v := lhs.(type) {
		case *ast.ParenExpr:
			lhs = v.X
			continue
		case *ast.StarExpr:
			lhs = v.X
			continue
		}
		break
	}
	switch v := lhs.(type) {
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(v); obj != nil && isPkgLevelVar(pass, obj) {
			return "package-level variable " + obj.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return "field " + v.Sel.Name
		}
		if obj := pass.Info.Uses[v.Sel]; obj != nil && isPkgLevelVar(pass, obj) {
			return "package-level variable " + obj.Name()
		}
	case *ast.IndexExpr:
		if aliasExpr(pass, v.X, aliases) {
			return "" // writing into the buffer itself
		}
		if t := pass.TypeOf(v.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				return "a map element"
			}
		}
		return "an element of caller-visible storage"
	}
	return ""
}

func isPkgLevelVar(pass *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}

// funcLitCapturing reports whether e is a function literal whose body
// references a buffer alias — storing or sending such a closure leaks
// the buffer with it.
func funcLitCapturing(pass *Pass, e ast.Expr, aliases map[types.Object]bool) bool {
	lit, ok := e.(*ast.FuncLit)
	return ok && referencesAny(pass, lit.Body, aliases)
}

// goroutineCaptures reports whether a go statement hands the buffer to
// the new goroutine, by argument or by closure capture.
func goroutineCaptures(pass *Pass, call *ast.CallExpr, aliases map[types.Object]bool) bool {
	for _, a := range call.Args {
		if aliasExpr(pass, a, aliases) {
			return true
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return referencesAny(pass, lit.Body, aliases)
	}
	return false
}

// bufferName names the escaping alias for the diagnostic.
func bufferName(pass *Pass, e ast.Expr, aliases map[types.Object]bool) string {
	name := "(buffer)"
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil && aliases[obj] {
				name = obj.Name()
				return false
			}
		}
		return true
	})
	return name
}
