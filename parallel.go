package dard

import (
	"context"
	"fmt"

	"dard/internal/parallel"
)

// This file is the facade of the concurrent experiment runner. The
// paper's evaluation is a matrix of independent seeded simulations that
// ns-2 forced the authors to run one at a time; here the cells fan out
// across a worker pool while staying bit-identical to a serial run:
//
//   - results are stored at each cell's own index, so assembly never
//     depends on completion order;
//   - RunMatrix derives every cell's seed from the base seed and the
//     cell's identity (CellSeed), never from shared RNG state, so the
//     numbers are independent of the worker count;
//   - scenarios sharing one pre-built *Topology are safe to run
//     concurrently — paths resolve through immutable construction-time
//     index tables (topology.PathSet), so there is no shared mutable
//     state on the data path at all.

// RunAll executes the scenarios concurrently on a worker pool and
// returns their reports in input order. workers <= 0 uses one worker per
// CPU; 1 reproduces a serial run exactly. Scenarios run verbatim — each
// report is identical to what Scenario.Run would have produced — so
// results never depend on the worker count. Per-scenario errors are
// collected with errors.Join and the surviving reports are still
// returned (failed slots stay nil).
func RunAll(scenarios []Scenario, workers int) ([]*Report, error) {
	return RunAllContext(context.Background(), scenarios, workers)
}

// RunAllContext is RunAll with cooperative cancellation: canceling ctx
// stops in-flight scenarios at their next boundary and skips unstarted
// ones. Completed reports are still returned at their slots; every
// abandoned slot contributes its cancellation error to the join.
func RunAllContext(ctx context.Context, scenarios []Scenario, workers int) ([]*Report, error) {
	reports := make([]*Report, len(scenarios))
	err := parallel.ForEachContext(ctx, workers, len(scenarios), func(i int) error {
		rep, err := scenarios[i].RunContext(ctx)
		if err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
		reports[i] = rep
		return nil
	})
	return reports, err
}

// RunMatrix executes every (pattern, scheduler) cell of base on one
// shared topology and returns reports keyed "pattern/scheduler". Each
// cell's seed is CellSeed(base.Seed, topo, pattern): stable per cell, so
// parallel and serial runs agree cell by cell, and shared across the
// schedulers of one pattern, so scheduler comparisons stay paired on the
// same workload. Cell errors are collected with errors.Join; completed
// cells are still returned.
func RunMatrix(topo *Topology, base Scenario, pats []Pattern, scheds []Scheduler, workers int) (map[string]*Report, error) {
	type cell struct {
		pat Pattern
		sch Scheduler
	}
	cells := make([]cell, 0, len(pats)*len(scheds))
	for _, pat := range pats {
		for _, sch := range scheds {
			cells = append(cells, cell{pat, sch})
		}
	}
	reports := make([]*Report, len(cells))
	err := parallel.ForEach(workers, len(cells), func(i int) error {
		c := cells[i]
		s := base
		s.Topo = topo
		s.Pattern = c.pat
		s.Scheduler = c.sch
		s.Seed = CellSeed(base.Seed, topo, c.pat)
		rep, err := s.Run()
		if err != nil {
			return fmt.Errorf("%s/%s: %w", c.pat, c.sch, err)
		}
		reports[i] = rep
		return nil
	})
	out := make(map[string]*Report, len(cells))
	for i, c := range cells {
		if reports[i] != nil {
			out[fmt.Sprintf("%s/%s", c.pat, c.sch)] = reports[i]
		}
	}
	return out, err
}

// CellSeed derives the RNG seed of one experiment cell from the base
// seed and the cell's stable identity (topology name and traffic
// pattern), via splitmix64. The scheduler is deliberately not part of
// the key: every scheduler of a cell row sees the same workload, which
// keeps A-vs-B comparisons paired the way the paper's tables are.
func CellSeed(base int64, topo *Topology, pat Pattern) int64 {
	if base == 0 {
		base = 1 // Scenario's default seed
	}
	return parallel.Seed(base, topo.Name()+"/"+string(pat))
}

// Prewarm is a no-op kept for API compatibility. It used to fill the
// materialized per-ToR-pair path cache — O(p^4) bytes per warm pair on a
// fat-tree — so that concurrent scenarios would not contend on its lock.
// Paths now resolve through implicit per-topology index tables built at
// construction (topology.PathSet): there is nothing left to warm, and
// nothing for concurrent runs to contend on.
func (t *Topology) Prewarm() {}
