package dard

import (
	"fmt"
	"math"
	"sort"

	"dard/internal/ctlmsg"
	"dard/internal/flowsim"
	"dard/internal/fpcmp"
	"dard/internal/topology"
	"dard/internal/trace"
)

// PathState is one entry of a monitor's path state vector PV (§2.5): the
// state of the most congested switch-switch link along the path.
type PathState struct {
	// Bandwidth is the bottleneck link's capacity in bits/s.
	Bandwidth float64
	// Flows is the number of elephant flows on the bottleneck link.
	Flows int
	// BoNF is Bandwidth/Flows, +Inf when Flows is zero.
	BoNF float64
}

// monitor tracks the BoNF of every equal-cost path between one
// source-destination ToR pair on behalf of one source end host (§2.4).
// Path state is assembled by exchanging marshaled ctlmsg queries and
// replies with per-switch agents — the OpenFlow statistics interface of
// the prototype — so control-byte accounting reflects real wire sizes.
type monitor struct {
	ctl            *Controller
	srcHost        topology.NodeID
	srcToR, dstToR topology.NodeID
	paths          []topology.Path
	// flows holds the host's elephant flows towards dstToR, by flow ID.
	flows map[int]*flowsim.Flow
	// pv is the path state vector assembled at the last query tick; nil
	// until the first query completes.
	pv []PathState
	// switches are the devices covering every path (§2.4.2): the source
	// ToR, the aggregation switches next to both ToRs, and the top tier.
	switches []topology.NodeID
	agents   map[topology.NodeID]*ctlmsg.SwitchAgent
	seqNo    uint32
	released bool
}

func newMonitor(s *flowsim.Sim, c *Controller, srcHost, srcToR, dstToR topology.NodeID) *monitor {
	m := &monitor{
		ctl:     c,
		srcHost: srcHost,
		srcToR:  srcToR,
		dstToR:  dstToR,
		paths:   s.Paths(srcToR, dstToR),
		flows:   make(map[int]*flowsim.Flow),
		agents:  make(map[topology.NodeID]*ctlmsg.SwitchAgent),
	}
	// The switches to query are the upstream endpoints of every path
	// link: exactly the four groups of §2.4.2.
	seen := make(map[topology.NodeID]bool)
	g := s.Net().Graph()
	for _, p := range m.paths {
		for _, l := range p.Links {
			seen[g.Link(l).From] = true
		}
	}
	for sw := range seen {
		m.switches = append(m.switches, sw)
	}
	sort.Slice(m.switches, func(i, j int) bool { return m.switches[i] < m.switches[j] })
	return m
}

// scheduleQuery arms the periodic path-state assembly. The first query
// fires after a uniform random fraction of the interval so monitors
// across hosts are not synchronized.
func (m *monitor) scheduleQuery(s *flowsim.Sim) {
	first := s.Rand().Float64() * m.ctl.opts.QueryInterval
	var tick func()
	tick = func() {
		if m.released {
			return
		}
		if err := m.assemble(s); err != nil {
			// A malformed control exchange is a bug, not an input error.
			panic(fmt.Sprintf("dard: path state assembling: %v", err))
		}
		s.After(m.ctl.opts.QueryInterval, tick)
	}
	s.After(first, tick)
}

// assemble runs one round of Path State Assembling (§2.4.2): send one
// state query to every covering switch, collect the marshaled replies,
// and fold the per-port states into the path state vector.
func (m *monitor) assemble(s *flowsim.Sim) error {
	m.seqNo++
	linkState := make(map[topology.LinkID]ctlmsg.PortState)
	totalBytes := 0
	for _, sw := range m.switches {
		agent := m.agents[sw]
		if agent == nil {
			var err error
			agent, err = ctlmsg.NewSwitchAgent(s, sw)
			if err != nil {
				return err
			}
			m.agents[sw] = agent
		}
		q := ctlmsg.Query{
			MonitorID:       uint64(m.srcHost)<<32 | uint64(m.dstToR),
			SwitchID:        uint32(sw),
			SeqNo:           m.seqNo,
			TimestampMicros: uint64(s.Now() * 1e6),
		}
		qb, err := q.MarshalBinary()
		if err != nil {
			return err
		}
		rb, err := agent.Serve(qb)
		if err != nil {
			return err
		}
		totalBytes += len(qb) + len(rb)
		var reply ctlmsg.Reply
		if err := reply.UnmarshalBinary(rb); err != nil {
			return err
		}
		if reply.SeqNo != m.seqNo {
			return fmt.Errorf("reply sequence %d for query %d", reply.SeqNo, m.seqNo)
		}
		for _, p := range reply.Ports {
			linkState[topology.LinkID(p.LinkID)] = p
		}
	}
	s.RecordControl(float64(totalBytes))

	pv := make([]PathState, len(m.paths))
	for i, p := range m.paths {
		st := PathState{Bandwidth: math.Inf(1), BoNF: math.Inf(1)}
		for _, l := range p.Links {
			port, ok := linkState[l]
			if !ok {
				return fmt.Errorf("no switch reported state for link %d", l)
			}
			capacity := float64(port.BandwidthMbps) * 1e6
			n := int(port.ElephantFlows)
			bonf := math.Inf(1)
			switch {
			case fpcmp.IsZero(capacity):
				bonf = 0 // failed link
			case n > 0:
				bonf = capacity / float64(n)
			}
			if bonf < st.BoNF || (math.IsInf(st.BoNF, 1) && capacity < st.Bandwidth) {
				st = PathState{Bandwidth: capacity, Flows: n, BoNF: bonf}
			}
		}
		pv[i] = st
	}
	m.pv = pv
	if tr := s.Tracer(); tr.Enabled() {
		// One congestion signal per monitor and tick: the worst path's
		// BoNF. An idle path's +Inf BoNF counts as its bottleneck
		// capacity (the whole link is available to a first elephant).
		min := math.Inf(1)
		for _, st := range pv {
			b := st.BoNF
			if math.IsInf(b, 1) {
				b = st.Bandwidth
			}
			if b < min {
				min = b
			}
		}
		tr.Sample(trace.MetricMinBoNF, int64(m.srcHost)<<32|int64(m.dstToR), s.Now(), min)
	}
	return nil
}

// flowVector builds FV: the number of the monitor's elephant flows on
// each path (§2.5).
func (m *monitor) flowVector(n int) []int {
	fv := make([]int, n)
	for _, f := range m.flows {
		if f.PathIdx >= 0 && f.PathIdx < n {
			fv[f.PathIdx]++
		}
	}
	return fv
}
