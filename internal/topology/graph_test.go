package topology

import "testing"

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(ToR, "tor1", 0, 0)
	b := g.AddNode(Aggr, "aggr1", 0, 0)
	h := g.AddNode(Host, "E1", 0, 0)
	ab := g.AddDuplex(a, b, 1e9, 1e-4)
	ha := g.AddDuplex(h, a, 1e9, 1e-4)

	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumLinks() != 4 {
		t.Fatalf("NumLinks = %d, want 4 (two duplex pairs)", g.NumLinks())
	}
	if got := g.Link(ab); got.From != a || got.To != b {
		t.Errorf("link ab endpoints = %v -> %v, want %v -> %v", got.From, got.To, a, b)
	}
	rev := g.Link(g.Reverse(ab))
	if rev.From != b || rev.To != a {
		t.Errorf("reverse(ab) = %v -> %v, want %v -> %v", rev.From, rev.To, b, a)
	}
	if g.Reverse(g.Reverse(ab)) != ab {
		t.Error("reverse is not an involution")
	}
	if id, ok := g.LinkBetween(b, a); !ok || id != g.Reverse(ab) {
		t.Errorf("LinkBetween(b,a) = %v,%v", id, ok)
	}
	if _, ok := g.LinkBetween(h, b); ok {
		t.Error("LinkBetween(h,b) should not exist")
	}
	if !g.IsSwitchLink(ab) {
		t.Error("tor-aggr link should be a switch link")
	}
	if g.IsSwitchLink(ha) {
		t.Error("host-tor link should not be a switch link")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGraphValidateRejectsBadHost(t *testing.T) {
	g := NewGraph()
	h := g.AddNode(Host, "E1", 0, 0)
	a := g.AddNode(Aggr, "aggr1", 0, 0)
	g.AddDuplex(h, a, 1e9, 1e-4)
	if err := g.Validate(); err == nil {
		t.Error("Validate should reject a host attached to a non-ToR")
	}

	g2 := NewGraph()
	g2.AddNode(Host, "E1", 0, 0)
	if err := g2.Validate(); err == nil {
		t.Error("Validate should reject an unattached host")
	}
}

func TestNodesOfKindAndFind(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	if got := len(g.NodesOfKind(Core)); got != 4 {
		t.Errorf("cores = %d, want 4", got)
	}
	if got := len(g.NodesOfKind(Aggr)); got != 8 {
		t.Errorf("aggrs = %d, want 8", got)
	}
	n, ok := g.FindNode("core1")
	if !ok || n.Kind != Core {
		t.Errorf("FindNode(core1) = %+v, %v", n, ok)
	}
	if _, ok := g.FindNode("nosuch"); ok {
		t.Error("FindNode(nosuch) should fail")
	}
}

func TestNeighborsOrder(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Aggr, "a", 0, 0)
	b := g.AddNode(Core, "b", -1, 0)
	c := g.AddNode(Core, "c", -1, 1)
	g.AddDuplex(a, b, 1e9, 1e-4)
	g.AddDuplex(a, c, 1e9, 1e-4)
	nb := g.Neighbors(a)
	if len(nb) != 2 || nb[0] != b || nb[1] != c {
		t.Errorf("Neighbors = %v, want [%v %v] in creation order", nb, b, c)
	}
}
