package dard

import "testing"

// TestDARDDeterministic: two identical DARD runs produce identical
// results — scheduling rounds iterate monitors in stable order, the
// hash-based initial assignment ignores shared RNG state, and all control
// timers are seeded.
func TestDARDDeterministic(t *testing.T) {
	runOnce := func() *Report {
		rep, err := Scenario{
			Topology:       TopologySpec{Kind: FatTree, P: 4},
			Scheduler:      SchedulerDARD,
			Pattern:        PatternRandom,
			RatePerHost:    1.5,
			Duration:       10,
			FileSizeMB:     48,
			Seed:           17,
			ElephantAgeSec: 0.25,
			DARD:           Tuning{QueryInterval: 0.25, ScheduleInterval: 1, ScheduleJitter: 1},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := runOnce(), runOnce()
	if a.DARDShifts != b.DARDShifts {
		t.Errorf("shifts differ: %d vs %d", a.DARDShifts, b.DARDShifts)
	}
	if len(a.TransferTimes) != len(b.TransferTimes) {
		t.Fatal("different completion counts")
	}
	for i := range a.TransferTimes {
		if a.TransferTimes[i] != b.TransferTimes[i] {
			t.Fatalf("transfer time %d differs: %g vs %g", i, a.TransferTimes[i], b.TransferTimes[i])
		}
	}
	for i := range a.PathSwitches {
		if a.PathSwitches[i] != b.PathSwitches[i] {
			t.Fatalf("path switch %d differs", i)
		}
	}
	if a.ControlBytes != b.ControlBytes {
		t.Errorf("control bytes differ: %g vs %g", a.ControlBytes, b.ControlBytes)
	}
}
