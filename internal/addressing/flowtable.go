package addressing

import (
	"fmt"
	"sort"
	"strings"

	"dard/internal/topology"
)

// The paper's prototype initializes every OpenFlow switch once, through a
// NOX component, with two static flow tables (§3.1): flow table 0 holds
// the downhill entries (matched against the destination address) and flow
// table 1 the uphill entries (matched against the source address); table
// 0 is consulted first, giving downhill routes higher priority. All
// entries are permanent — the controller is never consulted again, which
// is the paper's argument that DARD does not depend on a centralized
// controller at runtime.

// FlowRule is one OpenFlow-style rule in the initialization program.
type FlowRule struct {
	// Table is 0 for downhill (destination-matched) rules, 1 for uphill
	// (source-matched) rules.
	Table int
	// Priority orders rules within a table: longer prefixes match first.
	Priority int
	// Match is the prefix the rule matches (against the destination
	// address in table 0, the source address in table 1).
	Match Prefix
	// OutPort is the 1-based exit port index at this switch.
	OutPort int
	// NextHop names the neighbor reached through OutPort.
	NextHop string
}

// SwitchProgram is the complete initialization of one switch.
type SwitchProgram struct {
	Switch string
	Rules  []FlowRule
}

// FlowTablePrograms compiles the plan's uphill/downhill tables into the
// per-switch initialization programs the NOX component would install,
// ordered by switch name.
func (p *Plan) FlowTablePrograms() []SwitchProgram {
	g := p.net.Graph()
	var programs []SwitchProgram
	for sw, tables := range p.tables {
		node := g.Node(sw)
		prog := SwitchProgram{Switch: node.Name}
		portOf := portIndexer(g, sw)
		for _, e := range tables.Downhill {
			prog.Rules = append(prog.Rules, FlowRule{
				Table:    0,
				Priority: e.Prefix.Len,
				Match:    e.Prefix,
				OutPort:  portOf(e.Link),
				NextHop:  g.Node(g.Link(e.Link).To).Name,
			})
		}
		for _, e := range tables.Uphill {
			prog.Rules = append(prog.Rules, FlowRule{
				Table:    1,
				Priority: e.Prefix.Len,
				Match:    e.Prefix,
				OutPort:  portOf(e.Link),
				NextHop:  g.Node(g.Link(e.Link).To).Name,
			})
		}
		sort.SliceStable(prog.Rules, func(i, j int) bool {
			if prog.Rules[i].Table != prog.Rules[j].Table {
				return prog.Rules[i].Table < prog.Rules[j].Table
			}
			return prog.Rules[i].Priority > prog.Rules[j].Priority
		})
		programs = append(programs, prog)
	}
	sort.Slice(programs, func(i, j int) bool { return programs[i].Switch < programs[j].Switch })
	return programs
}

// portIndexer maps a switch's outgoing links to 1-based port indices in
// adjacency order, the numbering the prefix allocation uses.
func portIndexer(g *topology.Graph, sw topology.NodeID) func(topology.LinkID) int {
	out := g.Out(sw)
	idx := make(map[topology.LinkID]int, len(out))
	for i, l := range out {
		idx[l] = i + 1
	}
	return func(l topology.LinkID) int { return idx[l] }
}

// String renders the program in a readable ovs-ofctl-like form.
func (sp SwitchProgram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %s (%d rules)\n", sp.Switch, len(sp.Rules))
	for _, r := range sp.Rules {
		match := "ip_dst"
		if r.Table == 1 {
			match = "ip_src"
		}
		pfx := r.Match.String()
		if ip, err := r.Match.IPv4(); err == nil {
			pfx = ip
		}
		fmt.Fprintf(&b, "  table=%d priority=%d %s=%s actions=output:%d  # -> %s\n",
			r.Table, r.Priority, match, pfx, r.OutPort, r.NextHop)
	}
	return b.String()
}

// TotalRules counts the rules the initializer installs network-wide — a
// measure of the (one-time) configuration cost.
func (p *Plan) TotalRules() int {
	n := 0
	for _, t := range p.tables {
		n += len(t.Downhill) + len(t.Uphill)
	}
	return n
}
