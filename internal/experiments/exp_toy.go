package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dard/internal/game"
	"dard/internal/parallel"
	"dard/internal/topology"
)

// Table1 replays the toy example of §2.2 (Figure 1 / Table 1): three
// elephant flows initially collide on core1 of a p=4 fat-tree;
// asynchronous selfish scheduling spreads them in two moves and raises
// the global minimum BoNF from 1/3 Gbps to a full link.
func Table1() (*Result, error) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{P: 4})
	if err != nil {
		return nil, err
	}
	tor := func(pod, idx int) topology.NodeID { return ft.ToRsOfPod(pod)[idx] }
	flows := [][2]topology.NodeID{
		{tor(0, 0), tor(1, 0)}, // Flow 0: E11 -> E21
		{tor(0, 1), tor(1, 1)}, // Flow 1: E13 -> E24
		{tor(2, 0), tor(1, 0)}, // Flow 2: E31 -> E22
	}
	g, _, err := game.FromNetwork(ft, flows, 0.05e9)
	if err != nil {
		return nil, err
	}
	start := game.Strategy{0, 0, 0}
	d, err := game.NewDynamics(g, start)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	values := make(map[string]float64)
	round := 0
	describe := func() {
		minB := g.MinBoNF(d.S) / 1e9
		fmt.Fprintf(&b, "round %d: strategy %v  min BoNF %.3f Gbps\n", round, d.S, minB)
		values[fmt.Sprintf("round%d/minBoNF_Gbps", round)] = minB
	}
	describe()
	rng := rand.New(rand.NewSource(1))
	for round = 1; round <= 5; round++ {
		movedAny := false
		order := rng.Perm(g.NumFlows())
		for _, f := range order {
			if moved, to := d.BestResponse(f); moved {
				fmt.Fprintf(&b, "  flow %d shifts to path %d (core%d)\n", f, to, to+1)
				movedAny = true
			}
		}
		describe()
		if !movedAny {
			fmt.Fprintf(&b, "converged: Nash equilibrium after %d moves\n", d.Steps)
			break
		}
	}
	values["moves"] = float64(d.Steps)
	if d.IsNash() {
		values["nash"] = 1
	}
	return &Result{
		ID:     "Table 1",
		Title:  "toy example: selfish scheduling converges in two moves",
		Text:   b.String(),
		Values: values,
	}, nil
}

// NashConvergence validates Theorem 2 statistically: over random
// congestion games, asynchronous selfish dynamics converge to a Nash
// equilibrium in a bounded number of moves with a monotone minimum BoNF.
// Trials fan out across the worker pool (workers <= 0 uses every CPU, 1
// is serial); each trial owns an RNG seeded from (seed, trial index), so
// the aggregate statistics are identical for every worker count.
func NashConvergence(trials int, seed int64, workers int) (*Result, error) {
	if trials <= 0 {
		trials = 50
	}
	type trialResult struct{ steps, flows int }
	results := make([]trialResult, trials)
	err := parallel.ForEach(workers, trials, func(trial int) error {
		rng := rand.New(rand.NewSource(parallel.Seed(seed, fmt.Sprintf("nash/trial=%d", trial))))
		g := randomGame(rng)
		start := make(game.Strategy, g.NumFlows())
		for f := range start {
			start[f] = rng.Intn(len(g.Routes[f]))
		}
		d, err := game.NewDynamics(g, start)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		n, err := d.RunAsync(rng, 0)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		if !d.IsNash() {
			return fmt.Errorf("trial %d: terminal state is not Nash", trial)
		}
		results[trial] = trialResult{steps: n, flows: g.NumFlows()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var steps, flowsTotal int
	maxSteps := 0
	for _, r := range results {
		steps += r.steps
		flowsTotal += r.flows
		if r.steps > maxSteps {
			maxSteps = r.steps
		}
	}
	values := map[string]float64{
		"trials":         float64(trials),
		"meanMoves":      float64(steps) / float64(trials),
		"maxMoves":       float64(maxSteps),
		"movesPerFlow":   float64(steps) / float64(flowsTotal),
		"allConvergedOK": 1,
	}
	return &Result{
		ID:     "Theorem 2",
		Title:  "selfish dynamics converge to Nash equilibria (Appendix B)",
		Text:   renderValues(values),
		Values: values,
	}, nil
}

func randomGame(rng *rand.Rand) *game.Game {
	nLinks := 6 + rng.Intn(12)
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1e9 * float64(1+rng.Intn(2))
	}
	nFlows := 3 + rng.Intn(12)
	routes := make([][][]int, nFlows)
	for f := range routes {
		nRoutes := 2 + rng.Intn(3)
		for r := 0; r < nRoutes; r++ {
			length := 1 + rng.Intn(3)
			route := make([]int, 0, length)
			seen := map[int]bool{}
			for len(route) < length {
				l := rng.Intn(nLinks)
				if !seen[l] {
					seen[l] = true
					route = append(route, l)
				}
			}
			routes[f] = append(routes[f], route)
		}
	}
	g, err := game.New(caps, routes, 1e7)
	if err != nil {
		panic(err)
	}
	return g
}
