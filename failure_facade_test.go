package dard

import "testing"

// TestLinkFailureFacade runs the failure-injection extension through the
// public API: a fabric link dies mid-run; DARD completes every flow while
// ECMP strands the ones hashed onto the dead link.
func TestLinkFailureFacade(t *testing.T) {
	base := Scenario{
		Topology:       TopologySpec{Kind: FatTree, P: 4},
		Pattern:        PatternStride,
		RatePerHost:    0.5,
		Duration:       8,
		FileSizeMB:     64,
		Seed:           9,
		ElephantAgeSec: 0.25,
		MaxTimeSec:     60,
		DARD:           Tuning{QueryInterval: 0.25, ScheduleInterval: 0.5, ScheduleJitter: 0.5},
		LinkFailures: []LinkFailure{
			{AtSec: 2, From: "aggr1_1", To: "core1"},
		},
	}
	ecmpScn := base
	ecmpScn.Scheduler = SchedulerECMP
	ecmp, err := ecmpScn.Run()
	if err != nil {
		t.Fatal(err)
	}
	dardScn := base
	dardScn.Scheduler = SchedulerDARD
	dd, err := dardScn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if dd.Unfinished != 0 {
		t.Errorf("DARD stranded %d flows on the dead link", dd.Unfinished)
	}
	if ecmp.Unfinished == 0 {
		t.Error("expected ECMP to strand at least one flow (hash onto the dead link)")
	}
}

func TestLinkFailureValidation(t *testing.T) {
	base := Scenario{
		Topology:     TopologySpec{Kind: FatTree, P: 4},
		Duration:     2,
		RatePerHost:  0.5,
		FileSizeMB:   8,
		LinkFailures: []LinkFailure{{AtSec: 1, From: "nosuch", To: "core1"}},
	}
	if _, err := base.Run(); err == nil {
		t.Error("unknown failure endpoint should fail")
	}
	base.LinkFailures = []LinkFailure{{AtSec: 1, From: "core1", To: "core2"}}
	if _, err := base.Run(); err == nil {
		t.Error("non-adjacent failure endpoints should fail")
	}
	base.LinkFailures = []LinkFailure{{AtSec: 1, From: "aggr1_1", To: "core1"}}
	base.Engine = EnginePacket
	if _, err := base.Run(); err == nil {
		t.Error("failures on the packet engine should be rejected")
	}
}
