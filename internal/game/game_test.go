package game

import (
	"math"
	"math/rand"
	"testing"

	"dard/internal/topology"
)

func mustGame(t *testing.T, caps []float64, routes [][][]int, delta float64) *Game {
	t.Helper()
	g, err := New(caps, routes, delta)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGameValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("no links should fail")
	}
	if _, err := New([]float64{1, -1}, nil, 0); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := New([]float64{1}, [][][]int{{}}, 0); err == nil {
		t.Error("flow without routes should fail")
	}
	if _, err := New([]float64{1}, [][][]int{{{5}}}, 0); err == nil {
		t.Error("out-of-range link should fail")
	}
	if _, err := New([]float64{1}, [][][]int{{{0}}}, -1); err == nil {
		t.Error("negative delta should fail")
	}
	g := mustGame(t, []float64{1}, [][][]int{{{0}}}, 0)
	if err := g.Validate(Strategy{0}); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
	if err := g.Validate(Strategy{1}); err == nil {
		t.Error("route index out of range should fail")
	}
	if err := g.Validate(Strategy{}); err == nil {
		t.Error("wrong strategy length should fail")
	}
}

func TestBoNFComputation(t *testing.T) {
	// Two parallel links, two flows.
	g := mustGame(t, []float64{1, 1}, [][][]int{
		{{0}, {1}},
		{{0}, {1}},
	}, 0.01)
	s := Strategy{0, 0}
	loads := g.LinkLoads(s)
	if loads[0] != 2 || loads[1] != 0 {
		t.Fatalf("loads = %v", loads)
	}
	if got := g.LinkBoNF(loads, 0); got != 0.5 {
		t.Errorf("link 0 BoNF = %g, want 0.5", got)
	}
	if got := g.LinkBoNF(loads, 1); !math.IsInf(got, 1) {
		t.Errorf("idle link BoNF = %g, want +Inf", got)
	}
	if got := g.FlowBoNF(s, 0); got != 0.5 {
		t.Errorf("flow BoNF = %g, want 0.5", got)
	}
	if got := g.MinBoNF(s); got != 0.5 {
		t.Errorf("MinBoNF = %g, want 0.5", got)
	}
}

func TestBestResponseMovesToEmptyLink(t *testing.T) {
	g := mustGame(t, []float64{1, 1}, [][][]int{
		{{0}, {1}},
		{{0}, {1}},
	}, 0.01)
	d, err := NewDynamics(g, Strategy{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	moved, to := d.BestResponse(0)
	if !moved || to != 1 {
		t.Fatalf("BestResponse = %v,%d, want move to 1", moved, to)
	}
	if !d.IsNash() {
		t.Error("1-and-1 split should be Nash")
	}
	if d.Steps != 1 {
		t.Errorf("Steps = %d, want 1", d.Steps)
	}
}

func TestDeltaBlocksMarginalMoves(t *testing.T) {
	// Moving from a 2-flow link (BoNF .5) to an empty slower link
	// (BoNF .55) improves by only .05 < delta: stay.
	g := mustGame(t, []float64{1, 0.55}, [][][]int{
		{{0}, {1}},
		{{0}},
	}, 0.1)
	d, err := NewDynamics(g, Strategy{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if moved, _ := d.BestResponse(0); moved {
		t.Error("move below delta threshold accepted")
	}
	if !d.IsNash() {
		t.Error("state should be Nash under delta")
	}
}

// TestTable1ToyExample replays §2.2's toy example (Figure 1 / Table 1):
// three elephants all through core1 of a p=4 fat-tree. Asynchronous
// selfish scheduling converges in exactly two moves and lifts the global
// minimum BoNF from 1/3 of a link to a full link.
func TestTable1ToyExample(t *testing.T) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0: pod0/ToR0 -> pod1/ToR0; flow 1: pod0/ToR1 -> pod1/ToR1;
	// flow 2: pod2/ToR0 -> pod1/ToR0. (The paper's E11->E21, E13->E24,
	// E31->E22 up to renaming.)
	tor := func(pod, idx int) topology.NodeID { return ft.ToRsOfPod(pod)[idx] }
	flows := [][2]topology.NodeID{
		{tor(0, 0), tor(1, 0)},
		{tor(0, 1), tor(1, 1)},
		{tor(2, 0), tor(1, 0)},
	}
	g, _, err := FromNetwork(ft, flows, 0.05e9)
	if err != nil {
		t.Fatal(err)
	}
	start := Strategy{0, 0, 0} // everyone on core1
	if got := g.MinBoNF(start); math.Abs(got-1e9/3) > 1 {
		t.Fatalf("initial MinBoNF = %g, want 1/3 Gbps", got)
	}
	d, err := NewDynamics(g, start)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := d.RunAsync(rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 2 {
		t.Errorf("converged in %d moves, want 2 (Table 1)", steps)
	}
	if !d.IsNash() {
		t.Error("terminal state is not Nash")
	}
	if got := g.MinBoNF(d.S); math.Abs(got-1e9) > 1 {
		t.Errorf("final MinBoNF = %g, want 1 Gbps", got)
	}
}

func TestStateVectorSums(t *testing.T) {
	g := mustGame(t, []float64{1, 1, 2}, [][][]int{
		{{0, 2}, {1, 2}},
	}, 0.25)
	sv := g.StateVector(Strategy{0})
	total := 0
	for _, v := range sv {
		total += v
	}
	if total != g.NumLinks() {
		t.Errorf("state vector sums to %d, want %d", total, g.NumLinks())
	}
}

func TestLessOrdering(t *testing.T) {
	if !Less([]int{0, 2, 5}, []int{1, 0, 0}) {
		t.Error("fewer min-bucket links should be Less")
	}
	if Less([]int{1, 0}, []int{1, 0}) {
		t.Error("Less must be irreflexive")
	}
	if Less([]int{1, 0, 0}, []int{0, 9, 9}) {
		t.Error("more min-bucket links cannot be Less")
	}
	if !Equal([]int{1, 2}, []int{1, 2}) || Equal([]int{1}, []int{1, 0}) {
		t.Error("Equal broken")
	}
}

// randomGame builds a small random congestion game.
func randomGame(rng *rand.Rand) *Game {
	nLinks := 4 + rng.Intn(10)
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 1 + float64(rng.Intn(3))
	}
	nFlows := 2 + rng.Intn(10)
	routes := make([][][]int, nFlows)
	for f := range routes {
		nRoutes := 2 + rng.Intn(3)
		for r := 0; r < nRoutes; r++ {
			length := 1 + rng.Intn(3)
			route := make([]int, 0, length)
			seen := map[int]bool{}
			for len(route) < length {
				l := rng.Intn(nLinks)
				if !seen[l] {
					seen[l] = true
					route = append(route, l)
				}
			}
			routes[f] = append(routes[f], route)
		}
	}
	g, err := New(caps, routes, 0.01)
	if err != nil {
		panic(err)
	}
	return g
}

// TestTheorem2Properties is the empirical validation of Appendix B: over
// many random games and random initial strategies, asynchronous selfish
// dynamics (1) terminate, (2) end in a Nash equilibrium, (3) never
// decrease the global minimum BoNF, and (4) never grow the population of
// links within δ of the old minimum.
func TestTheorem2Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		g := randomGame(rng)
		start := make(Strategy, g.NumFlows())
		for f := range start {
			start[f] = rng.Intn(len(g.Routes[f]))
		}
		d, err := NewDynamics(g, start)
		if err != nil {
			t.Fatal(err)
		}

		prevMin := g.MinBoNF(d.S)
		prevCount := countAtMin(g, d.S, prevMin)
		moves := 0
		maxMoves := 200 * g.NumFlows()
		for moves < maxMoves {
			movedAny := false
			for f := 0; f < g.NumFlows(); f++ {
				if moved, _ := d.BestResponse(f); moved {
					moves++
					movedAny = true
					minNow := g.MinBoNF(d.S)
					if minNow < prevMin-1e-9 {
						t.Fatalf("trial %d: global MinBoNF decreased %g -> %g", trial, prevMin, minNow)
					}
					if minNow <= prevMin+1e-9 {
						// Minimum unchanged: the population at the old
						// minimum level must not grow.
						if c := countAtMin(g, d.S, prevMin); c > prevCount {
							t.Fatalf("trial %d: links at min level grew %d -> %d", trial, prevCount, c)
						}
					}
					prevMin = g.MinBoNF(d.S)
					prevCount = countAtMin(g, d.S, prevMin)
				}
			}
			if !movedAny {
				break
			}
		}
		if moves >= maxMoves {
			t.Fatalf("trial %d: dynamics did not converge in %d moves", trial, maxMoves)
		}
		if !d.IsNash() {
			t.Fatalf("trial %d: terminal state is not a Nash equilibrium", trial)
		}
	}
}

// countAtMin counts loaded links with BoNF within delta of the level m.
func countAtMin(g *Game, s Strategy, m float64) int {
	loads := g.LinkLoads(s)
	n := 0
	for l := range g.Capacities {
		if loads[l] == 0 {
			continue
		}
		if g.LinkBoNF(loads, l) <= m+g.Delta {
			n++
		}
	}
	return n
}

func TestRunAsyncDeterministicWithSeed(t *testing.T) {
	g := randomGame(rand.New(rand.NewSource(7)))
	start := make(Strategy, g.NumFlows())
	d1, _ := NewDynamics(g, start)
	d2, _ := NewDynamics(g, start)
	s1, err1 := d1.RunAsync(rand.New(rand.NewSource(3)), 0)
	s2, err2 := d2.RunAsync(rand.New(rand.NewSource(3)), 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1 != s2 {
		t.Errorf("same seed, different step counts: %d vs %d", s1, s2)
	}
	for f := range d1.S {
		if d1.S[f] != d2.S[f] {
			t.Fatalf("same seed, different terminal strategies")
		}
	}
}

func TestFromNetworkRejectsSameToR(t *testing.T) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	tor := ft.ToRsOfPod(0)[0]
	if _, _, err := FromNetwork(ft, [][2]topology.NodeID{{tor, tor}}, 0.01); err == nil {
		t.Error("same-ToR flow should be rejected")
	}
}

func TestStateVectorMonotoneUnderImprovement(t *testing.T) {
	// For the toy example, the state vector after convergence must be
	// Less than (or equal to) the initial one in the paper's ordering.
	ft, err := topology.NewFatTree(topology.FatTreeConfig{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	tor := func(pod, idx int) topology.NodeID { return ft.ToRsOfPod(pod)[idx] }
	flows := [][2]topology.NodeID{
		{tor(0, 0), tor(1, 0)},
		{tor(0, 1), tor(1, 1)},
		{tor(2, 0), tor(1, 0)},
	}
	g, _, err := FromNetwork(ft, flows, 0.05e9)
	if err != nil {
		t.Fatal(err)
	}
	start := Strategy{0, 0, 0}
	d, _ := NewDynamics(g, start)
	if _, err := d.RunAsync(rand.New(rand.NewSource(2)), 0); err != nil {
		t.Fatal(err)
	}
	before := g.StateVector(start)
	after := g.StateVector(d.S)
	if !Less(after, before) {
		t.Errorf("terminal SV %v not Less than initial %v", after, before)
	}
}
