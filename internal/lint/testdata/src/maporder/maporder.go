// Package maporder exercises every effect shape the maporder analyzer
// knows, plus the safe idioms it must keep quiet about.
package maporder

import (
	"fmt"
	"sort"
)

// Appending map elements without sorting leaks iteration order.
func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `append to out \(not sorted afterwards\)`
		out = append(out, k)
	}
	return out
}

// The collect-then-sort idiom is the canonical fix and stays quiet.
func appendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator also counts as sorting the collection.
func appendSortSlice(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Sends publish elements in iteration order.
func send(m map[string]int, ch chan<- string) {
	for k := range m { // want `channel send`
		ch <- k
	}
}

// FP accumulation depends on order; integer accumulation does not.
func sums(m map[string]float64, n map[string]int) (float64, int) {
	var fsum float64
	var isum int
	for _, v := range m { // want `floating-point accumulation into fsum`
		fsum += v
	}
	for _, v := range n {
		isum += v
	}
	return fsum, isum
}

// Printing from inside the loop emits in iteration order.
func dump(m map[string]int) {
	for k, v := range m { // want `call to fmt.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Returning a loop-derived value picks an arbitrary element...
func anyKey(m map[string]int) string {
	for k := range m { // want `return of a value picked by iteration order`
		return k
	}
	return ""
}

// ...but returning a constant (existence check) is order-free.
func nonEmpty(m map[string]int) bool {
	for range m {
		return true
	}
	return false
}

// Plain assignment of a loop value races for one slot: last writer
// wins, and "last" is whatever order the runtime picked.
func lastWins(m map[string]int) int {
	best := -1
	for _, v := range m { // want `assignment of a loop-dependent value to best`
		best = v
	}
	return best
}

// Writes keyed by the range key are per-slot and commutative.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	inv := make(map[string]string, len(m))
	for k, v := range m { // want `assignment of a loop-dependent value to out`
		out[v] = k // indexed by the range VALUE: two keys can race for one slot
		inv[k] = k // keyed by the range key: each iteration owns its slot
	}
	return out
}

// Assignments of loop-independent values (flags) are order-free.
func hasNegative(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}

// A justified suppression silences the finding.
func suppressed(m map[string]int) []string {
	var out []string
	//dardlint:ordered fixture: output feeds a test helper that sorts before comparing
	for k := range m {
		out = append(out, k)
	}
	return out
}
