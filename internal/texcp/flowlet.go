package texcp

import (
	"dard/internal/psim"
	"dard/internal/topology"
)

// The paper leaves flowlet-granularity TeXCP as future work (§4.3.3,
// citing Sinha et al.'s "Harnessing TCP's Burstiness with Flowlet
// Switching"): per-packet splitting reorders segments, but TCP sends in
// bursts, and switching paths only between bursts keeps each burst in
// order. FlowletPolicy implements exactly that on top of the TeXCP
// weights: a flow's packets stay on the current path while they arrive
// within Timeout of each other; after an idle gap longer than Timeout —
// larger than the path RTT difference, so in-flight packets have drained
// — the next burst re-draws a path from the agent's weights.

// DefaultFlowletTimeout separates bursts; it must exceed the RTT spread
// across the equal-cost paths (sub-millisecond in a datacenter).
const DefaultFlowletTimeout = 0.002

// FlowletPolicy is TeXCP with flowlet-granularity switching.
type FlowletPolicy struct {
	*Policy
	// Timeout is the idle gap that ends a flowlet; zero means
	// DefaultFlowletTimeout.
	Timeout float64
}

var (
	_ psim.Policy       = (*FlowletPolicy)(nil)
	_ psim.PacketRouter = (*FlowletPolicy)(nil)
)

// NewFlowlet builds a flowlet-switching TeXCP policy.
func NewFlowlet(timeout float64) *FlowletPolicy {
	if timeout <= 0 {
		timeout = DefaultFlowletTimeout
	}
	return &FlowletPolicy{Policy: New(), Timeout: timeout}
}

// Name implements psim.Policy.
func (*FlowletPolicy) Name() string { return "TeXCP-flowlet" }

// PacketRoute returns a picker that holds the path within a flowlet and
// re-draws from the TeXCP weights between flowlets.
func (p *FlowletPolicy) PacketRoute(rt *psim.Runtime, f *psim.FlowState) func() []topology.LinkID {
	n := rt.PathSet(f.SrcToR, f.DstToR).Len()
	if n <= 1 {
		return nil
	}
	a := p.agent(rt, f.SrcToR, f.DstToR)
	routes := make([][]topology.LinkID, n)
	for i := range routes {
		routes[i] = rt.Route(f, i)
	}
	cur := a.pick(rt)
	lastSend := -1.0
	return func() []topology.LinkID {
		now := rt.Now()
		if lastSend >= 0 && now-lastSend > p.Timeout {
			cur = a.pick(rt) // new flowlet: free to switch
		}
		lastSend = now
		return routes[cur]
	}
}
