package topology

import (
	"errors"
	"testing"
)

// FuzzTopologyBuild drives every family's constructor with arbitrary
// parameters. The contract under fuzz is the ErrConfig discipline:
// hostile parameters must come back as typed configuration errors —
// never a panic, never an unwrapped error — and any accepted topology
// must validate and honor the cross-family path-property contract on a
// sample of pairs. Raw inputs are folded into a hostile-but-bounded
// range so rejection paths (negative, zero, odd, over-cap) all stay
// reachable while accepted builds remain small enough to check.
func FuzzTopologyBuild(f *testing.F) {
	f.Add(uint8(0), int16(6), int16(0), int16(0))    // fat-tree p=6
	f.Add(uint8(0), int16(-3), int16(7), int16(0))   // fat-tree, hostile
	f.Add(uint8(1), int16(4), int16(4), int16(2))    // clos
	f.Add(uint8(1), int16(0), int16(5), int16(-1))   // clos, hostile
	f.Add(uint8(2), int16(4), int16(3), int16(2))    // three-tier
	f.Add(uint8(2), int16(-1), int16(300), int16(0)) // three-tier, hostile
	f.Add(uint8(3), int16(2), int16(2), int16(1))    // dragonfly
	f.Add(uint8(3), int16(0), int16(-5), int16(9))   // dragonfly, hostile
	f.Add(uint8(4), int16(3), int16(1), int16(0))    // dcell
	f.Add(uint8(4), int16(40), int16(3), int16(0))   // dcell, over the server cap
	f.Fuzz(func(t *testing.T, family uint8, a, b, c int16) {
		// Fold params toward small magnitudes; signs and zeros survive, so
		// every validation branch stays reachable without letting an
		// accepted build exceed a few thousand nodes.
		pa, pb, pc := int(a%40), int(b%40), int(c%8)
		var (
			net Network
			err error
		)
		switch family % 5 {
		case 0:
			net, err = NewFatTree(FatTreeConfig{P: pa, HostsPerToR: pc})
		case 1:
			net, err = NewClos(ClosConfig{DI: pa, DA: pb, HostsPerToR: pc})
		case 2:
			net, err = NewThreeTier(ThreeTierConfig{
				NumCores: pa, NumPods: pb, AccessPerPod: pc, HostsPerAccess: 2})
		case 3:
			net, err = NewDragonfly(DragonflyConfig{D: pa, A: pb, P: pc})
		case 4:
			net, err = NewDCell(DCellConfig{N: pa, Level: pc})
		}
		if err != nil {
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("rejection is not an ErrConfig: %v", err)
			}
			return
		}
		if err := net.Graph().Validate(); err != nil {
			t.Fatalf("accepted topology fails validation: %v", err)
		}
		if len(net.Hosts()) == 0 {
			// HostsPerToR=0 edge scaling is legal on the tree families; the
			// path contract is about attachment switches, which need hosts.
			return
		}
		for _, pair := range samplePairs(net, 48) {
			checkPairPaths(t, net, pair[0], pair[1])
		}
	})
}
