package flowsim

import (
	"math"

	"dard/internal/fpcmp"
)

// The incremental max-min engine.
//
// Rates are assigned by progressive filling — repeatedly freeze the
// flows of the link with the smallest residual fair share — exactly as
// in the retained reference scheduler (reference.go). Three structural
// optimizations keep the hot path sub-quadratic without changing a
// single bit of the result:
//
//  1. Per-link flow-membership lists are maintained incrementally on
//     arrival, departure, and path switch (attachLinks/detachLinks)
//     instead of being rebuilt from every active flow on every
//     recompute. List order is free: flows frozen in one filling batch
//     all receive the same rate, and each link's residual is reduced by
//     that one value once per member, so the arithmetic is independent
//     of membership order.
//
//  2. Recomputation is scoped to the part of the flow/link sharing
//     graph the triggering events actually touched. Every membership or
//     capacity change seeds its link (markLinkDirty); a BFS over the
//     bipartite sharing graph expands the seeds into the affected
//     component. Progressive filling decomposes over connected
//     components — a component's fill sequence never reads another
//     component's state — so flows outside the affected component would
//     recompute to bit-identical rates and can keep them frozen.
//
//  3. The per-iteration bottleneck search is an indexed min-heap over
//     link fair shares keyed (share, LinkID) instead of a linear scan.
//     The key is a total order, so the heap pops exactly the link the
//     reference's tie-broken scan selects.
//
// Flow progress is lazy: Remaining is materialized only when a
// recompute actually changes the flow's rate (applyRate), and the
// projected completion finishAt stays valid in between. Both schedulers
// share applyRate, so the floating-point op sequence — and therefore
// every completion timestamp in the report — is identical.

// recomputeRates reassigns max-min fair rates to every flow whose
// allocation may have changed since the last recompute.
func (s *Sim) recomputeRates() {
	s.ratesDirty = false
	if s.cfg.Reference {
		s.recomputeRatesReference()
		return
	}
	if len(s.dirtyLinks) == 0 {
		return
	}
	if len(s.active) == 0 {
		s.clearDirtyLinks()
		return
	}

	// Expand the dirty seeds into the affected component: alternate
	// link -> member flows -> their links until the frontier closes.
	// linkUsed doubles as the BFS queue; every link and flow is visited
	// once per epoch.
	s.epoch++
	s.linkUsed = s.linkUsed[:0]
	for _, l := range s.dirtyLinks {
		s.linkDirty[l] = false
		if s.linkSeen[l] != s.epoch {
			s.linkSeen[l] = s.epoch
			s.linkUsed = append(s.linkUsed, l)
		}
	}
	s.dirtyLinks = s.dirtyLinks[:0]
	s.compFlows = s.compFlows[:0]
	for i := 0; i < len(s.linkUsed); i++ {
		for _, f := range s.linkFlows[s.linkUsed[i]] {
			if f.seen == s.epoch {
				continue
			}
			f.seen = s.epoch
			f.newRate = -1 // unfrozen
			s.compFlows = append(s.compFlows, f)
			for _, fl := range f.links {
				if s.linkSeen[fl] != s.epoch {
					s.linkSeen[fl] = s.epoch
					s.linkUsed = append(s.linkUsed, fl)
				}
			}
		}
	}
	if len(s.compFlows) == 0 {
		return // seeds only touched empty links (e.g. failing an idle link)
	}

	// Progressive filling over the component, bottleneck by bottleneck.
	// Every link of the component starts from its full capacity: the
	// component's flows are exactly its links' members, so the fill is
	// self-contained.
	s.lheap.reset()
	for _, l := range s.linkUsed {
		s.residual[l] = s.LinkCapacity(l)
		n := len(s.linkFlows[l])
		s.unfrozen[l] = n
		if n > 0 {
			s.lheap.push(l, s.residual[l]/float64(n))
		}
	}
	remaining := len(s.compFlows)
	for remaining > 0 {
		bottleneck, best, ok := s.lheap.popMin()
		if !ok {
			// Unreachable: every flow crosses at least its host links.
			for _, f := range s.compFlows {
				if f.newRate < 0 {
					f.newRate = 0
				}
			}
			break
		}
		if best < 0 {
			best = 0
		}
		// Freeze every unfrozen flow crossing the bottleneck. Once its
		// unfrozen count reaches zero the link leaves the heap, so each
		// membership list is consumed at most once.
		for _, f := range s.linkFlows[bottleneck] {
			if f.newRate >= 0 {
				continue
			}
			f.newRate = best
			remaining--
			for _, l := range f.links {
				s.residual[l] -= best
				if s.residual[l] < 0 {
					s.residual[l] = 0
				}
				s.unfrozen[l]--
				if l == bottleneck {
					continue // already popped
				}
				if s.unfrozen[l] == 0 {
					s.lheap.remove(l)
				} else {
					s.lheap.update(l, s.residual[l]/float64(s.unfrozen[l]))
				}
			}
		}
	}

	for _, f := range s.compFlows {
		s.applyRate(f, f.newRate)
	}
}

// applyRate installs a freshly computed rate. If it differs from the
// flow's current rate, the flow's progress is materialized first —
// Remaining shrinks by the old rate over the elapsed span — and the
// completion projection is rebuilt. An unchanged rate is a strict no-op:
// Remaining, syncAt, and finishAt keep their bits, which is what lets
// the incremental engine skip untouched components entirely. Both
// schedulers share this function, so their floating-point op sequences
// are identical by construction.
func (s *Sim) applyRate(f *Flow, rate float64) {
	if fpcmp.Eq(rate, f.Rate) {
		return
	}
	if dt := s.now - f.syncAt; dt > 0 {
		f.Remaining -= f.Rate * dt
		if f.Remaining < 0 {
			f.Remaining = 0
		}
	}
	f.syncAt = s.now
	f.Rate = rate
	if rate > 0 {
		f.finishAt = s.now + f.Remaining/rate
	} else {
		f.finishAt = math.Inf(1)
	}
	if !s.cfg.Reference {
		s.done.fix(f)
	}
}

// clearDirtyLinks drops pending seeds without recomputing (no active
// flows can depend on them).
func (s *Sim) clearDirtyLinks() {
	for _, l := range s.dirtyLinks {
		s.linkDirty[l] = false
	}
	s.dirtyLinks = s.dirtyLinks[:0]
}
