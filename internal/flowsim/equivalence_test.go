package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"dard/internal/topology"
	"dard/internal/workload"
)

// These tests enforce the incremental engine's contract: it must
// reproduce the retained reference scheduler (reference.go) bit for bit
// — every finish time, every path-switch count, every byte of control
// traffic — on workloads with churn, path switching, and mid-run link
// failures. Float comparisons use math.Float64bits so NaN (unfinished
// flows) and signed zeros are compared exactly.

// diffResults fails the test on the first field where the incremental
// engine's results diverge from the reference's.
func diffResults(t *testing.T, inc, ref *Results) {
	t.Helper()
	if inc.Controller != ref.Controller {
		t.Fatalf("Controller: %q vs reference %q", inc.Controller, ref.Controller)
	}
	if inc.Unfinished != ref.Unfinished {
		t.Fatalf("Unfinished: %d vs reference %d", inc.Unfinished, ref.Unfinished)
	}
	if math.Float64bits(inc.SimTime) != math.Float64bits(ref.SimTime) {
		t.Fatalf("SimTime: %v vs reference %v", inc.SimTime, ref.SimTime)
	}
	if math.Float64bits(inc.ControlBytes) != math.Float64bits(ref.ControlBytes) {
		t.Fatalf("ControlBytes: %v vs reference %v", inc.ControlBytes, ref.ControlBytes)
	}
	if inc.PeakElephants != ref.PeakElephants {
		t.Fatalf("PeakElephants: %d vs reference %d", inc.PeakElephants, ref.PeakElephants)
	}
	if len(inc.Flows) != len(ref.Flows) {
		t.Fatalf("Flows: %d entries vs reference %d", len(inc.Flows), len(ref.Flows))
	}
	for i := range inc.Flows {
		a, b := inc.Flows[i], ref.Flows[i]
		if a.ID != b.ID || a.PathSwitches != b.PathSwitches ||
			a.FinalPathIdx != b.FinalPathIdx || a.Elephant != b.Elephant ||
			math.Float64bits(a.Finish) != math.Float64bits(b.Finish) ||
			math.Float64bits(a.TransferTime) != math.Float64bits(b.TransferTime) {
			t.Fatalf("flow %d diverges:\n  incremental %+v\n  reference   %+v", a.ID, a, b)
		}
	}
}

// fabricLinks returns the directed aggr->core links of the graph, in ID
// order.
func fabricLinks(g *topology.Graph) []topology.LinkID {
	var out []topology.LinkID
	for l := 0; l < g.NumLinks(); l++ {
		lk := g.Link(topology.LinkID(l))
		if g.Node(lk.From).Kind == topology.Aggr && g.Node(lk.To).Kind == topology.Core {
			out = append(out, lk.ID)
		}
	}
	return out
}

// duplexEvent fails (or repairs) both directions of a duplex link.
func duplexEvent(g *topology.Graph, at float64, l topology.LinkID, down bool) []LinkEvent {
	return []LinkEvent{
		{At: at, Link: l, Down: down},
		{At: at, Link: g.Reverse(l), Down: down},
	}
}

func randomFlows(rng *rand.Rand, n, hosts int, maxSize float64) []workload.Flow {
	flows := make([]workload.Flow, n)
	for i := range flows {
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		flows[i] = workload.Flow{
			ID:       i,
			Src:      src,
			Dst:      dst,
			SizeBits: (0.1 + rng.Float64()) * maxSize,
			Arrival:  rng.Float64() * 2,
		}
	}
	return flows
}

// switchingController assigns random paths and keeps re-routing a random
// active flow from a timer, exercising SetPath's incremental membership
// maintenance in both engines. All randomness comes from the simulation's
// own seeded RNG, so both engines see identical decisions.
type switchingController struct {
	interval float64
}

func (c *switchingController) Name() string { return "switcher" }

func (c *switchingController) Start(s *Sim) {
	var tick func()
	tick = func() {
		if act := s.Active(); len(act) > 0 {
			f := act[s.Rand().Intn(len(act))]
			if err := s.SetPath(f, s.Rand().Intn(len(s.Paths(f.SrcToR, f.DstToR)))); err != nil {
				panic(err)
			}
			s.RecordControl(64)
		}
		s.After(c.interval, tick)
	}
	s.After(c.interval, tick)
}

func (c *switchingController) AssignPath(s *Sim, f *Flow) int {
	return s.Rand().Intn(len(s.Paths(f.SrcToR, f.DstToR)))
}

// TestReferenceEquivalence runs randomized workloads with path churn and
// a mid-run duplex link failure plus repair on the p=4 fat-tree, on both
// engines, and requires bit-identical results.
func TestReferenceEquivalence(t *testing.T) {
	ft := testFatTree(t)
	g := ft.Graph()
	fabric := fabricLinks(g)
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		flows := randomFlows(rng, 5+rng.Intn(60), 16, 2e9)
		var events []LinkEvent
		if trial%2 == 0 {
			l := fabric[rng.Intn(len(fabric))]
			events = append(events, duplexEvent(g, 0.5, l, true)...)
			events = append(events, duplexEvent(g, 2.5, l, false)...)
		}
		cfg := Config{
			Net:         ft,
			Flows:       flows,
			Seed:        int64(trial),
			ElephantAge: 0.25,
			MaxTime:     120,
			LinkEvents:  events,
		}
		cfg.Controller = &switchingController{interval: 0.2}
		inc := run(t, cfg)
		cfg.Reference = true
		cfg.Controller = &switchingController{interval: 0.2}
		ref := run(t, cfg)
		diffResults(t, inc, ref)
	}
}

// batchController re-routes a whole batch of active flows from a single
// timer — the recompute shape Hedera-style central rounds produce. One
// event dirties many flows at once, so the seeds typically partition
// into several disjoint components, exercising the component partition
// and (with IntraWorkers > 1) the parallel fill path. All randomness
// comes from the simulation's seeded RNG, so runs are identical across
// worker counts.
type batchController struct {
	interval float64
	batch    int
}

func (c *batchController) Name() string { return "batcher" }

func (c *batchController) Start(s *Sim) {
	var tick func()
	tick = func() {
		act := s.Active()
		for i := 0; i < c.batch && len(act) > 0; i++ {
			f := act[s.Rand().Intn(len(act))]
			if err := s.SetPath(f, s.Rand().Intn(len(s.Paths(f.SrcToR, f.DstToR)))); err != nil {
				panic(err)
			}
			s.RecordControl(64)
		}
		s.After(c.interval, tick)
	}
	s.After(c.interval, tick)
}

func (c *batchController) AssignPath(s *Sim, f *Flow) int {
	return s.Rand().Intn(len(s.Paths(f.SrcToR, f.DstToR)))
}

// TestIntraWorkersEquivalence pins the component-parallel recompute's
// bit-identity at the engine level: a run with IntraWorkers 2, 4, and 8
// must reproduce the serial run's results AND its mid-run per-flow rate
// allocations to the exact Float64bits, on a workload whose batched
// path switches force multi-component recomputes.
func TestIntraWorkersEquivalence(t *testing.T) {
	ft := testFatTree(t)
	g := ft.Graph()
	fabric := fabricLinks(g)
	rng := rand.New(rand.NewSource(42))
	flows := randomFlows(rng, 48, 16, 2e9)
	var events []LinkEvent
	l := fabric[rng.Intn(len(fabric))]
	events = append(events, duplexEvent(g, 0.6, l, true)...)
	events = append(events, duplexEvent(g, 2.2, l, false)...)

	// collect runs the scenario and records, at fixed checkpoints, the
	// Float64bits of every flow's current rate (inactive flows as a
	// sentinel), flow-ID major.
	collect := func(workers int) (*Results, []uint64, IntraStats) {
		cfg := Config{
			Net:          ft,
			Controller:   &batchController{interval: 0.15, batch: 6},
			Flows:        flows,
			Seed:         42,
			ElephantAge:  0.25,
			MaxTime:      120,
			LinkEvents:   events,
			IntraWorkers: workers,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rates []uint64
		for _, at := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
			s.After(at, func() {
				s.recomputeRates()
				for id := range flows {
					f := s.Flow(id)
					if f == nil || !s.IsActive(f) {
						rates = append(rates, ^uint64(0))
						continue
					}
					rates = append(rates, math.Float64bits(f.Rate()))
				}
			})
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, rates, s.IntraStats()
	}

	serialRes, serialRates, serialStats := collect(1)
	if serialStats.MultiComponent == 0 {
		t.Fatalf("scenario produced no multi-component recomputes; the parallel path is untested (stats %+v)", serialStats)
	}
	for _, w := range []int{2, 4, 8} {
		res, rates, stats := collect(w)
		diffResults(t, res, serialRes)
		if len(rates) != len(serialRates) {
			t.Fatalf("IntraWorkers=%d: %d rate samples vs %d serial", w, len(rates), len(serialRates))
		}
		for i := range rates {
			if rates[i] != serialRates[i] {
				t.Fatalf("IntraWorkers=%d: rate sample %d (flow %d) = %x, serial %x",
					w, i, i%len(flows), rates[i], serialRates[i])
			}
		}
		if stats.ParallelDispatches == 0 {
			t.Fatalf("IntraWorkers=%d: no recompute was dispatched to the pool (stats %+v)", w, stats)
		}
		if stats.Recomputes != serialStats.Recomputes || stats.Components != serialStats.Components ||
			stats.MultiComponent != serialStats.MultiComponent {
			t.Fatalf("IntraWorkers=%d: partition shape diverged: %+v vs serial %+v", w, stats, serialStats)
		}
	}
}

// checkMaxMinLive is checkMaxMin against the effective (failure-aware)
// link capacities: a dead link has capacity zero, so the flows stranded
// on it are bottlenecked there at rate zero.
func checkMaxMinLive(t *testing.T, s *Sim) {
	t.Helper()
	load := make(map[topology.LinkID]float64)
	maxRate := make(map[topology.LinkID]float64)
	for _, f := range s.Active() {
		for _, l := range f.Links() {
			load[l] += f.Rate()
			if f.Rate() > maxRate[l] {
				maxRate[l] = f.Rate()
			}
		}
	}
	const eps = 1e-6
	for l, ld := range load {
		if cap := s.LinkCapacity(l); ld > cap*(1+eps)+eps {
			t.Fatalf("link %d oversubscribed: %g > %g", l, ld, cap)
		}
	}
	for _, f := range s.Active() {
		hasBottleneck := false
		for _, l := range f.Links() {
			saturated := load[l] >= s.LinkCapacity(l)*(1-eps)
			if saturated && f.Rate() >= maxRate[l]-eps {
				hasBottleneck = true
				break
			}
		}
		if !hasBottleneck {
			t.Fatalf("flow %d (rate %g) has no bottleneck link", f.ID, f.Rate())
		}
	}
}

// TestFabricEquivalenceAndFairness is the p=16 stress case: the paper's
// switching fabric (128 ToRs at one host each), hundreds of flows, three
// mid-run duplex fabric failures and one repair. Both engines must agree
// bit for bit, and the incremental engine's live allocation must satisfy
// the max-min property before, between, and after the failures.
func TestFabricEquivalenceAndFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("p=16 fabric run skipped in -short mode")
	}
	ft, err := topology.NewFatTree(topology.FatTreeConfig{P: 16, HostsPerToR: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph()
	fabric := fabricLinks(g)
	rng := rand.New(rand.NewSource(17))
	flows := randomFlows(rng, 400, 128, 4e9)
	var events []LinkEvent
	for i := 0; i < 3; i++ {
		events = append(events, duplexEvent(g, 1.0+0.5*float64(i), fabric[rng.Intn(len(fabric))], true)...)
	}
	events = append(events, duplexEvent(g, 3.0, events[0].Link, false)...)
	cfg := Config{
		Net:         ft,
		Flows:       flows,
		Seed:        17,
		ElephantAge: 0.25,
		MaxTime:     300,
		LinkEvents:  events,
	}
	checks := 0
	cfg.Controller = &switchingController{interval: 0.25}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []float64{0.75, 1.25, 1.75, 2.25, 3.5} {
		s.After(at, func() {
			s.recomputeRates()
			checkMaxMinLive(t, s)
			checks++
		})
	}
	inc, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if checks != 5 {
		t.Fatalf("ran %d fairness checks, want 5", checks)
	}
	if inc.Unfinished != 0 {
		t.Fatalf("%d unfinished flows at p=16", inc.Unfinished)
	}

	cfg.Reference = true
	cfg.Controller = &switchingController{interval: 0.25}
	ref := run(t, cfg)
	diffResults(t, inc, ref)
}
