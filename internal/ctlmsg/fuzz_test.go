package ctlmsg

import (
	"bytes"
	"testing"
)

// Fuzz targets for the control-plane wire codecs: unmarshaling arbitrary
// bytes must never panic, and valid messages must round-trip exactly.
// The seed corpora below run as ordinary tests under plain `go test`;
// `go test -fuzz=FuzzX` explores beyond them.

// queryCorpus returns marshaled queries plus adversarial mutations.
func queryCorpus(t testing.TB) [][]byte {
	t.Helper()
	var out [][]byte
	for _, q := range []Query{
		{},
		{MonitorID: 1<<16 | 7, SwitchID: 42, SeqNo: 9, TimestampMicros: 1_500_000},
		{MonitorID: ^uint64(0), SwitchID: ^uint32(0), SeqNo: ^uint32(0), TimestampMicros: ^uint64(0)},
	} {
		b, err := q.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func FuzzQueryUnmarshal(f *testing.F) {
	for _, b := range queryCorpus(f) {
		f.Add(b)
		f.Add(b[:len(b)-1])               // truncated
		f.Add(append([]byte{0xff}, b...)) // oversized, bad magic
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Query
		if err := q.UnmarshalBinary(data); err != nil {
			return // malformed input rejected: fine, as long as no panic
		}
		// Accepted input must round-trip to identical bytes.
		re, err := q.MarshalBinary()
		if err != nil {
			t.Fatalf("unmarshaled query fails to marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("query round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

func FuzzQueryRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), uint32(0), uint64(0))
	f.Add(uint64(1)<<16|7, uint32(42), uint32(9), uint64(1_500_000))
	f.Add(^uint64(0), ^uint32(0), ^uint32(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, mon uint64, sw, seq uint32, ts uint64) {
		q := Query{MonitorID: mon, SwitchID: sw, SeqNo: seq, TimestampMicros: ts}
		b, err := q.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != QueryLen {
			t.Fatalf("marshaled query is %d bytes, want %d", len(b), QueryLen)
		}
		var got Query
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		if got != q {
			t.Fatalf("round trip: %+v != %+v", got, q)
		}
	})
}

func FuzzReplyUnmarshal(f *testing.F) {
	for _, r := range []Reply{
		{},
		{SwitchID: 3, SeqNo: 8, Ports: []PortState{{LinkID: 1, BandwidthMbps: 1000, ElephantFlows: 2, QueuedKB: 5}}},
		{SwitchID: 9, SeqNo: 1, Ports: make([]PortState, 16)},
	} {
		b, err := r.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)-1]) // truncated port record
	}
	// Header declaring more ports than the payload carries: the count
	// field must be validated against the actual length, never trusted.
	huge, err := (Reply{SwitchID: 1, SeqNo: 1}).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	huge[12], huge[13], huge[14], huge[15] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Reply
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("unmarshaled reply fails to marshal: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("reply round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

func FuzzReplyRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), 0)
	f.Add(uint32(3), uint32(8), uint32(1), uint32(1000), uint32(2), uint32(5), 4)
	f.Fuzz(func(t *testing.T, sw, seq, link, bw, flows, queued uint32, n int) {
		if n < 0 || n > 256 {
			return
		}
		r := Reply{SwitchID: sw, SeqNo: seq}
		for i := 0; i < n; i++ {
			r.Ports = append(r.Ports, PortState{
				LinkID:        link + uint32(i),
				BandwidthMbps: bw,
				ElephantFlows: flows,
				QueuedKB:      queued,
			})
		}
		b, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != r.Size() {
			t.Fatalf("marshaled reply is %d bytes, want Size()=%d", len(b), r.Size())
		}
		var got Reply
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		if got.SwitchID != r.SwitchID || got.SeqNo != r.SeqNo || len(got.Ports) != len(r.Ports) {
			t.Fatalf("round trip header: %+v != %+v", got, r)
		}
		for i := range r.Ports {
			if got.Ports[i] != r.Ports[i] {
				t.Fatalf("round trip port %d: %+v != %+v", i, got.Ports[i], r.Ports[i])
			}
		}
	})
}
