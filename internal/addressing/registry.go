package addressing

import (
	"fmt"
	"sort"

	"dard/internal/topology"
)

// Registry is the DNS-like mapping from location-independent host IDs to
// the host's underlying hierarchical addresses (§2.3). The paper keeps
// this mapping in a configuration file cached at every end host; here it
// is an in-memory index built from a Plan.
type Registry struct {
	byName map[string]topology.NodeID
	byAddr map[Address]topology.NodeID
	plan   *Plan
}

// NewRegistry indexes every host of the plan's topology.
func NewRegistry(plan *Plan) *Registry {
	r := &Registry{
		byName: make(map[string]topology.NodeID),
		byAddr: make(map[Address]topology.NodeID),
		plan:   plan,
	}
	g := plan.Network().Graph()
	for _, h := range plan.Network().Hosts() {
		r.byName[g.Node(h).Name] = h
		for _, a := range plan.AddressesOf(h) {
			r.byAddr[a] = h
		}
	}
	return r
}

// Resolve returns the host with the given location-independent name and
// all of its addresses.
func (r *Registry) Resolve(name string) (topology.NodeID, []Address, error) {
	h, ok := r.byName[name]
	if !ok {
		return 0, nil, fmt.Errorf("unknown host ID %q", name)
	}
	return h, r.plan.AddressesOf(h), nil
}

// ReverseLookup maps an address back to its host.
func (r *Registry) ReverseLookup(a Address) (topology.NodeID, bool) {
	h, ok := r.byAddr[a]
	return h, ok
}

// HostNames lists every registered host ID, sorted.
func (r *Registry) HostNames() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
