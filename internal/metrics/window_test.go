package metrics

import (
	"math"
	"testing"
)

func TestComputeWindowsEmpty(t *testing.T) {
	ws, err := ComputeWindows(1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws != nil {
		t.Fatalf("empty sample set produced %d windows", len(ws))
	}
}

func TestComputeWindowsSingleSample(t *testing.T) {
	ws, err := ComputeWindows(1.0, []WindowSample{{Finish: 2.5, Bits: 8e6, Rate: 4e6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3 (two empty, one holding the sample)", len(ws))
	}
	for k := 0; k < 2; k++ {
		if ws[k].Flows != 0 || ws[k].Fairness != 0 || ws[k].ThroughputBps != 0 {
			t.Fatalf("window %d should be empty with fairness 0: %+v", k, ws[k])
		}
	}
	w := ws[2]
	if w.Flows != 1 || w.Bits != 8e6 || w.ThroughputBps != 8e6 {
		t.Fatalf("sample window wrong: %+v", w)
	}
	if w.Fairness != 1 {
		t.Fatalf("single-member window fairness = %g, want 1", w.Fairness)
	}
	if w.Start != 2 || w.End != 3 {
		t.Fatalf("window bounds [%g,%g), want [2,3)", w.Start, w.End)
	}
}

func TestComputeWindowsBoundaryExactCompletion(t *testing.T) {
	// A completion exactly on k*W belongs to window k, not k-1: the
	// windows are half-open [kW, (k+1)W).
	ws, err := ComputeWindows(2.0, []WindowSample{
		{Finish: 1.9, Bits: 1, Rate: 1},
		{Finish: 2.0, Bits: 1, Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if ws[0].Flows != 1 || ws[1].Flows != 1 {
		t.Fatalf("boundary completion misattributed: window 0 has %d flows, window 1 has %d", ws[0].Flows, ws[1].Flows)
	}
}

func TestComputeWindowsFairness(t *testing.T) {
	// Two equal rates: Jain = 1. Two rates 3:1 -> (4)^2/(2*10) = 0.8.
	ws, err := ComputeWindows(1.0, []WindowSample{
		{Finish: 0.2, Bits: 1, Rate: 5},
		{Finish: 0.7, Bits: 1, Rate: 5},
		{Finish: 1.1, Bits: 1, Rate: 3},
		{Finish: 1.8, Bits: 1, Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws[0].Fairness != 1 {
		t.Fatalf("equal-rate window fairness = %g, want 1", ws[0].Fairness)
	}
	if ws[1].Fairness != 0.8 {
		t.Fatalf("skewed window fairness = %g, want 0.8", ws[1].Fairness)
	}
	// All-zero rates count as equally served.
	ws, err = ComputeWindows(1.0, []WindowSample{
		{Finish: 0.5, Bits: 0, Rate: 0},
		{Finish: 0.6, Bits: 0, Rate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws[0].Fairness != 1 {
		t.Fatalf("zero-rate window fairness = %g, want 1", ws[0].Fairness)
	}
}

func TestComputeWindowsRejectsBadInput(t *testing.T) {
	if _, err := ComputeWindows(0, []WindowSample{{Finish: 1}}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := ComputeWindows(math.Inf(1), []WindowSample{{Finish: 1}}); err == nil {
		t.Error("infinite width accepted")
	}
	if _, err := ComputeWindows(1, []WindowSample{{Finish: math.NaN()}}); err == nil {
		t.Error("NaN completion accepted")
	}
	if _, err := ComputeWindows(1, []WindowSample{{Finish: 2}, {Finish: 1}}); err == nil {
		t.Error("out-of-order samples accepted")
	}
	if _, err := ComputeWindows(1, []WindowSample{{Finish: -0.5}}); err == nil {
		t.Error("negative completion accepted")
	}
}
