// Package fpcmp holds the approved floating-point identity
// comparisons. The dardlint floateq analyzer bans bare == / != on
// floats everywhere else: exact FP identity is occasionally exactly
// right — sentinel checks against an untouched zero value, the
// incremental engine's "unchanged rate is a strict no-op" contract,
// bit-identity selfchecks — but each such site must be a visible
// decision. Routing them through this package (or, for hot total-order
// comparators, a justified //dardlint:floateq comment) is how the
// decision is made visible.
//
// None of these helpers change semantics relative to the operator they
// wrap; they exist to name the intent.
package fpcmp

import "math"

// Eq reports whether a and b are identical under IEEE-754 equality
// (so NaN != NaN and 0 == -0). Use it where the algorithm's contract
// is "exactly the same value", e.g. skipping work when a recomputed
// rate lands on the current one.
func Eq(a, b float64) bool { return a == b }

// IsZero reports whether x is exactly zero. Use it for sentinel
// semantics: a config field nobody set, a capacity that marks a failed
// link, a denominator that would trap. It is NOT a tolerance check —
// 1e-300 is not zero.
func IsZero(x float64) bool { return x == 0 }

// SameBits reports whether a and b have identical IEEE-754
// representations (so NaN == NaN of the same payload, and 0 != -0).
// Use it for bit-identity assertions: traced==untraced, serial==
// parallel, incremental==reference.
func SameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
