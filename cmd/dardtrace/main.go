// Command dardtrace records a structured event trace for one scheduling
// scenario and renders human-readable summaries from it: event counts,
// the most congested links, the path-switch convergence timeline, the
// reconstructed bisection-throughput curve, and per-flow timelines. It
// can also summarize a trace recorded earlier (by dardtrace itself or by
// dardbench -trace-dir).
//
// Usage:
//
//	dardtrace -scheduler DARD -pattern stride -p 4          # record + summarize
//	dardtrace -engine packet -p 4 -capacity 100e6 -out t.jsonl
//	dardtrace -in t.jsonl -top 5 -flows 3                   # summarize a file
//	dardtrace -selfcheck                                    # verify the trace
//	dardtrace -csv t                                        # t_events.csv, t_series.csv
//
// -selfcheck proves the trace is faithful: the JSONL round-trips
// losslessly (parse -> re-encode -> byte-identical) and, when recording,
// the transfer times reconstructed from the trace equal the report's
// bit for bit.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"strings"

	"dard"
	"dard/internal/fpcmp"
	"dard/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dardtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dardtrace", flag.ContinueOnError)
	in := fs.String("in", "", "summarize this trace file instead of recording")
	outFile := fs.String("out", "", "write the recorded trace here (default: summarize only)")
	selfcheck := fs.Bool("selfcheck", false, "verify round-trip and report fidelity")
	top := fs.Int("top", 8, "number of congested links to list")
	bucket := fs.Float64("bucket", 1, "timeline bucket width in seconds")
	flows := fs.Int("flows", 0, "number of per-flow timelines to print")
	flowID := fs.Int("flow", -1, "print one flow's timeline by ID")

	kind := fs.String("topo", "fattree", "topology kind: fattree, clos, threetier")
	p := fs.Int("p", 4, "fat-tree port count")
	d := fs.Int("d", 4, "Clos D_I = D_A")
	hostsPerToR := fs.Int("hosts-per-tor", 0, "override hosts per ToR")
	capacity := fs.Float64("capacity", 0, "link capacity in bits/s (0 = 1 Gbps)")
	scheduler := fs.String("scheduler", "DARD", "ECMP, pVLB, DARD, SimulatedAnnealing, TeXCP")
	pattern := fs.String("pattern", "stride", "random, staggered, stride")
	engine := fs.String("engine", "flow", "flow or packet")
	rate := fs.Float64("rate", 1, "flow arrivals per second per host")
	duration := fs.Float64("duration", 10, "arrival window in seconds")
	fileMB := fs.Float64("file-mb", 16, "transfer size in MB")
	seed := fs.Int64("seed", 1, "random seed")
	elephantAge := fs.Float64("elephant-age", 0.5, "elephant detection threshold in seconds")
	probe := fs.Float64("probe-interval", 0, "probe period in seconds (0 = default, <0 = off)")
	csv := fs.String("csv", "", "also write <prefix>_events.csv and <prefix>_series.csv")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	var rep *dard.Report
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		tr, err = trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		rec := trace.NewRecorder(trace.RecorderOptions{})
		var err error
		rep, err = dard.Scenario{
			Topology: dard.TopologySpec{
				Kind:         dard.TopologyKind(*kind),
				P:            *p,
				D:            *d,
				HostsPerToR:  *hostsPerToR,
				LinkCapacity: *capacity,
			},
			Scheduler:          dard.Scheduler(*scheduler),
			Pattern:            dard.Pattern(*pattern),
			Engine:             dard.Engine(*engine),
			RatePerHost:        *rate,
			Duration:           *duration,
			FileSizeMB:         *fileMB,
			Seed:               *seed,
			ElephantAgeSec:     *elephantAge,
			Tracer:             rec,
			TraceProbeInterval: *probe,
		}.Run()
		if err != nil {
			return err
		}
		tr = rec.Take()
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				return err
			}
			if err := trace.WriteJSONL(f, tr); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *outFile)
		}
	}

	if *selfcheck {
		if err := check(tr, rep); err != nil {
			return err
		}
		fmt.Fprintln(out, "selfcheck: ok")
	}
	if *csv != "" {
		if err := writeCSVs(*csv, tr, out); err != nil {
			return err
		}
	}
	summarize(out, tr, rep, *top, *bucket, *flows, *flowID)
	return nil
}

// check verifies the trace round-trips losslessly through JSONL and, when
// a report is available, that the aggregator reconstructs its transfer
// times exactly.
func check(tr *trace.Trace, rep *dard.Report) error {
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr); err != nil {
		return fmt.Errorf("selfcheck: encode: %w", err)
	}
	first := buf.Bytes()
	back, err := trace.ReadJSONL(bytes.NewReader(first))
	if err != nil {
		return fmt.Errorf("selfcheck: decode: %w", err)
	}
	if !reflect.DeepEqual(tr, back) {
		return fmt.Errorf("selfcheck: trace changed across a JSONL round trip")
	}
	var again bytes.Buffer
	if err := trace.WriteJSONL(&again, back); err != nil {
		return fmt.Errorf("selfcheck: re-encode: %w", err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		return fmt.Errorf("selfcheck: JSONL encoding is not canonical")
	}
	if rep == nil {
		return nil
	}
	got := trace.NewAggregator(tr).TransferTimes()
	want := rep.TransferTimes
	if len(got) != len(want) {
		return fmt.Errorf("selfcheck: trace has %d completions, report has %d", len(got), len(want))
	}
	for i := range got {
		if !fpcmp.SameBits(got[i], want[i]) {
			return fmt.Errorf("selfcheck: transfer time %d: trace %v != report %v", i, got[i], want[i])
		}
	}
	return nil
}

func writeCSVs(prefix string, tr *trace.Trace, out io.Writer) error {
	for _, w := range []struct {
		path  string
		write func(io.Writer, *trace.Trace) error
	}{
		{prefix + "_events.csv", trace.WriteEventsCSV},
		{prefix + "_series.csv", trace.WriteSeriesCSV},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			return err
		}
		if err := w.write(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", w.path)
	}
	return nil
}

func summarize(out io.Writer, tr *trace.Trace, rep *dard.Report, top int, bucket float64, flows, flowID int) {
	a := trace.NewAggregator(tr)
	m := tr.Meta
	fmt.Fprintf(out, "trace: %s  %s/%s  engine=%s  seed=%d  probe=%gs  links=%d\n",
		m.Topology, m.Pattern, m.Scheduler, m.Engine, m.Seed, m.ProbeInterval, len(m.Links))

	counts := a.EventCounts()
	total := 0
	var parts []string
	for _, k := range trace.Kinds() {
		if n := counts[k]; n > 0 {
			total += n
			parts = append(parts, fmt.Sprintf("%s %d", k, n))
		}
	}
	fmt.Fprintf(out, "duration: %.3fs  events: %d (%s)\n", a.Duration(), total, strings.Join(parts, ", "))

	comps := a.Completions()
	if n := len(comps); n > 0 {
		tt := a.TransferTimes()
		sum := 0.0
		for _, t := range tt {
			sum += t
		}
		fmt.Fprintf(out, "flows: %d started, %d completed, mean transfer %.3fs (median %.3fs)\n",
			counts[trace.KindFlowStart], n, sum/float64(n), tt[n/2])
	}
	if cb := a.ControlBytes(); cb > 0 {
		fmt.Fprintf(out, "control: %.3f MB over %d exchanges\n", cb/1e6, counts[trace.KindControlMsg])
	}
	if rep != nil {
		fmt.Fprintf(out, "report: %d flows, %d unfinished, mean transfer %.3fs\n",
			rep.Flows, rep.Unfinished, rep.MeanTransferTime())
	}

	if links := a.TopLinks(top); len(links) > 0 {
		fmt.Fprintf(out, "\ntop congested links (mean probed utilization):\n")
		for i, l := range links {
			fmt.Fprintf(out, "  %2d. %-24s mean %5.1f%%  max %5.1f%%  samples %d  drops %d\n",
				i+1, l.Name, 100*l.MeanUtil, 100*l.MaxUtil, l.Samples, l.Drops)
		}
	}

	if tl := a.SwitchTimeline(bucket); len(tl) > 0 {
		fmt.Fprintf(out, "\npath switches per %gs bucket (convergence):\n", bucket)
		printTimeline(out, tl)
	}
	if tl := a.RetxTimeline(bucket); len(tl) > 0 {
		fmt.Fprintf(out, "\nretransmissions per %gs bucket:\n", bucket)
		printTimeline(out, tl)
	}

	if bis := a.BisectionSeries(); len(bis) > 0 {
		peak, peakT, sum := 0.0, 0.0, 0.0
		for _, p := range bis {
			sum += p.V
			if p.V > peak {
				peak, peakT = p.V, p.T
			}
		}
		fmt.Fprintf(out, "\nbisection throughput: peak %.3f Gbps at t=%.2fs, mean %.3f Gbps over %d probes\n",
			peak/1e9, peakT, sum/float64(len(bis))/1e9, len(bis))
	}

	if flows > 0 || flowID >= 0 {
		fmt.Fprintf(out, "\nflow timelines:\n")
		printed := 0
		for _, ft := range a.FlowTimelines() {
			if flowID >= 0 && int(ft.Flow) != flowID {
				continue
			}
			if flowID < 0 && printed >= flows {
				break
			}
			printFlow(out, ft)
			printed++
		}
		if printed == 0 {
			fmt.Fprintf(out, "  (no matching flows)\n")
		}
	}
}

func printTimeline(out io.Writer, tl []trace.TimeBucket) {
	max := 0
	for _, b := range tl {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range tl {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", b.Count*40/max)
		}
		fmt.Fprintf(out, "  [%6.1fs] %5d %s\n", b.Start, b.Count, bar)
	}
}

func printFlow(out io.Writer, ft *trace.FlowTimeline) {
	end := "unfinished"
	if !math.IsNaN(ft.End) {
		end = fmt.Sprintf("%.3fs (%.3fs)", ft.End, ft.End-ft.Start)
	}
	fmt.Fprintf(out, "  flow %d: %.1f MB, start %.3fs, end %s, %d switches, %d retx, %d drops\n",
		ft.Flow, ft.SizeBits/8e6, ft.Start, end, len(ft.Switches), ft.Retx, ft.Drops)
	for _, sw := range ft.Switches {
		fmt.Fprintf(out, "    t=%.3fs path %d -> %d\n", sw.T, sw.A, sw.B)
	}
	if len(ft.Rate) > 0 {
		fmt.Fprintf(out, "    rate: %s\n", sparkline(ft.Rate))
	}
	if len(ft.Cwnd) > 0 {
		fmt.Fprintf(out, "    cwnd: %s\n", sparkline(ft.Cwnd))
	}
}

// sparkline renders a probed series as min/max plus a coarse trend of up
// to eight evenly spaced samples.
func sparkline(pts []trace.Point) string {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.V
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	n := 8
	if len(vals) < n {
		n = len(vals)
	}
	picks := make([]string, n)
	for i := 0; i < n; i++ {
		picks[i] = fmt.Sprintf("%.3g", vals[i*len(vals)/n])
	}
	return fmt.Sprintf("min %.3g max %.3g [%s]", min, max, strings.Join(picks, " "))
}
