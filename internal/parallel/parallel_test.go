package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("auto worker count must be >= 1")
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		n := 100
		counts := make([]atomic.Int64, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachCollectsAllErrors(t *testing.T) {
	wantA := errors.New("cell 3 broke")
	wantB := errors.New("cell 7 broke")
	ran := make([]atomic.Int64, 10)
	err := ForEach(4, 10, func(i int) error {
		ran[i].Add(1)
		switch i {
		case 3:
			return wantA
		case 7:
			return wantB
		}
		return nil
	})
	if !errors.Is(err, wantA) || !errors.Is(err, wantB) {
		t.Fatalf("joined error missing a cell error: %v", err)
	}
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Errorf("index %d did not run despite other cells failing", i)
		}
	}
	// Index order in the joined message, regardless of completion order.
	msg := err.Error()
	if strings.Index(msg, "cell 3") > strings.Index(msg, "cell 7") {
		t.Errorf("errors not joined in index order: %q", msg)
	}
}

func TestForEachZeroCells(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		// Several Runs on one pool: helpers must survive between calls.
		for round := 0; round < 3; round++ {
			n := 50 + round
			counts := make([]atomic.Int64, n)
			p.Run(n, func(slot, i int) {
				if slot < 0 || slot >= p.Workers() {
					t.Errorf("slot %d out of range [0,%d)", slot, p.Workers())
				}
				counts[i].Add(1)
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d round %d: index %d ran %d times", workers, round, i, c)
				}
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

// TestPoolSlotsAreExclusive pins the slot contract: no two concurrent
// fn invocations may share a slot, so slot-indexed scratch needs no
// locks.
func TestPoolSlotsAreExclusive(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	busy := make([]atomic.Int64, p.Workers())
	p.Run(200, func(slot, i int) {
		if busy[slot].Add(1) != 1 {
			t.Errorf("slot %d entered concurrently", slot)
		}
		busy[slot].Add(-1)
	})
}

func TestPoolNilAndSmall(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Error("nil pool should report one worker")
	}
	ran := 0
	nilPool.Run(5, func(slot, i int) {
		if slot != 0 || i != ran {
			t.Errorf("nil pool must run inline in order: slot=%d i=%d ran=%d", slot, i, ran)
		}
		ran++
	})
	if ran != 5 {
		t.Errorf("nil pool ran %d of 5", ran)
	}
	nilPool.Close()
	p := NewPool(4)
	defer p.Close()
	p.Run(0, func(slot, i int) { t.Error("n=0 must not run") })
	single := 0
	p.Run(1, func(slot, i int) { single++ })
	if single != 1 {
		t.Errorf("n=1 ran %d times", single)
	}
}

func TestSeedDeterministicAndKeyed(t *testing.T) {
	a := Seed(1, "fattree(p=8)/stride")
	if a != Seed(1, "fattree(p=8)/stride") {
		t.Error("seed derivation not deterministic")
	}
	if a == Seed(1, "fattree(p=8)/random") {
		t.Error("different keys should decorrelate")
	}
	if a == Seed(2, "fattree(p=8)/stride") {
		t.Error("different bases should decorrelate")
	}
	if Seed(0, "") == 0 {
		t.Error("derived seed must never be 0 (Scenario's default sentinel)")
	}
	// No collisions across a realistic grid of cell keys.
	seen := make(map[int64]string)
	for size := 0; size < 64; size++ {
		for _, pat := range []string{"random", "staggered", "stride"} {
			key := fmt.Sprintf("fattree(p=%d)/%s", size, pat)
			s := Seed(1, key)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: %q and %q -> %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
