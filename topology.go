package dard

import (
	"fmt"
	"strings"
	"sync"

	"dard/internal/addressing"
	"dard/internal/topology"
	"dard/internal/workload"
)

// TopologyKind selects a topology family: the paper's three
// multi-rooted trees, or one of the non-tree families the path-provider
// abstraction added.
type TopologyKind string

// Supported topology kinds.
const (
	// FatTree is a p-port fat-tree (§4.3.1).
	FatTree TopologyKind = "fattree"
	// Clos is a VL2-style Clos network (§4.3.2).
	Clos TopologyKind = "clos"
	// ThreeTier is the oversubscribed 8-core-3-tier network (§4.3.2).
	ThreeTier TopologyKind = "threetier"
	// Dragonfly is a rail-aligned dragonfly: a+1 groups of d routers,
	// full local meshes, d rails per group pair, minimal plus
	// Valiant-style path sets. Beyond the paper's evaluation.
	Dragonfly TopologyKind = "dragonfly"
	// DCell is a recursively defined server-centric DCell_l with
	// canonical plus proxy-detour path sets. Beyond the paper's
	// evaluation.
	DCell TopologyKind = "dcell"
)

// TopologySpec declares a topology to build. Zero fields take the
// paper's defaults. New fields extend checkpointed session specs
// backward-compatibly: absent fields decode as zero and keep their
// defaults.
type TopologySpec struct {
	// Kind picks the family; defaults to FatTree.
	Kind TopologyKind
	// P is the fat-tree port count (default 8).
	P int
	// D is the Clos D_I = D_A parameter (default 8), and the dragonfly
	// routers-per-group (default 4).
	D int
	// A is the dragonfly global-link count per router, giving a+1 groups
	// (default 3).
	A int
	// N is the DCell servers-per-cell parameter (default 3).
	N int
	// Level is the DCell recursion depth (default 1).
	Level int
	// HostsPerToR scales the edge down from the paper's full population
	// (0 keeps the family default); on a dragonfly it is the host count
	// per router (default 2).
	HostsPerToR int
	// LinkCapacity is the uniform link bandwidth in bits/s for fat-tree,
	// Clos, dragonfly, and DCell (default 1 Gbps; the three-tier family
	// has fixed oversubscribed capacities).
	LinkCapacity float64
	// LinkDelay is the per-link propagation delay in seconds (default
	// 0.1 ms).
	LinkDelay float64
}

// Topology is a built network plus its hierarchical addressing plan.
// The plan materializes one address per (host, tree root) — O(p^4)
// entries on a fat-tree — so it is built lazily on first use: scenario
// runs never touch it (simulation routes through the implicit path
// sets), and building it eagerly would dominate the memory footprint of
// large-scale runs.
type Topology struct {
	net    topology.Network
	layout *workload.Layout

	planOnce sync.Once
	plan     *addressing.Plan
	planErr  error
}

// Build constructs the topology. The addressing plan is deferred to the
// first facade call that renders addresses or tables.
func (spec TopologySpec) Build() (*Topology, error) {
	var (
		net topology.Network
		err error
	)
	switch spec.Kind {
	case FatTree, "":
		p := spec.P
		if p == 0 {
			p = 8
		}
		net, err = topology.NewFatTree(topology.FatTreeConfig{
			P:            p,
			HostsPerToR:  spec.HostsPerToR,
			LinkCapacity: spec.LinkCapacity,
			LinkDelay:    spec.LinkDelay,
		})
	case Clos:
		d := spec.D
		if d == 0 {
			d = 8
		}
		net, err = topology.NewClos(topology.ClosConfig{
			DI:           d,
			DA:           d,
			HostsPerToR:  spec.HostsPerToR,
			LinkCapacity: spec.LinkCapacity,
			LinkDelay:    spec.LinkDelay,
		})
	case ThreeTier:
		net, err = topology.NewThreeTier(topology.ThreeTierConfig{
			HostsPerAccess: spec.HostsPerToR,
			LinkDelay:      spec.LinkDelay,
		})
	case Dragonfly:
		d, a, p := spec.D, spec.A, spec.HostsPerToR
		if d == 0 {
			d = 4
		}
		if a == 0 {
			a = 3
		}
		if p == 0 {
			p = 2
		}
		net, err = topology.NewDragonfly(topology.DragonflyConfig{
			D:            d,
			A:            a,
			P:            p,
			LinkCapacity: spec.LinkCapacity,
			LinkDelay:    spec.LinkDelay,
		})
	case DCell:
		n, level := spec.N, spec.Level
		if n == 0 {
			n = 3
		}
		if level == 0 {
			level = 1
		}
		net, err = topology.NewDCell(topology.DCellConfig{
			N:            n,
			Level:        level,
			LinkCapacity: spec.LinkCapacity,
			LinkDelay:    spec.LinkDelay,
		})
	default:
		return nil, fmt.Errorf("dard: unknown topology kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &Topology{net: net, layout: workload.NewLayout(net)}, nil
}

// addressPlan builds the hierarchical addressing plan on first use;
// safe for concurrent callers.
func (t *Topology) addressPlan() (*addressing.Plan, error) {
	t.planOnce.Do(func() {
		plan, err := addressing.Build(t.net)
		if err != nil {
			t.planErr = fmt.Errorf("dard: addressing %s: %w", t.net.Name(), err)
			return
		}
		t.plan = plan
	})
	return t.plan, t.planErr
}

// Name returns the topology's descriptive name, e.g. "fattree(p=8)".
func (t *Topology) Name() string { return t.net.Name() }

// NumHosts reports the number of end hosts.
func (t *Topology) NumHosts() int { return len(t.net.Hosts()) }

// NumSwitches reports the number of switches.
func (t *Topology) NumSwitches() int { return t.net.Graph().NumNodes() - t.NumHosts() }

// NumPaths reports the number of equal-cost paths between the
// attachment switches (ToRs, dragonfly routers, DCell servers) of two
// hosts (by host name, e.g. "E1").
func (t *Topology) NumPaths(srcHost, dstHost string) (int, error) {
	s, err := t.host(srcHost)
	if err != nil {
		return 0, err
	}
	d, err := t.host(dstHost)
	if err != nil {
		return 0, err
	}
	return t.net.PathSet(t.net.ToROf(s), t.net.ToROf(d)).Len(), nil
}

// HostNames lists every host name in index order.
func (t *Topology) HostNames() []string {
	g := t.net.Graph()
	names := make([]string, 0, t.NumHosts())
	for _, h := range t.net.Hosts() {
		names = append(names, g.Node(h).Name)
	}
	return names
}

// HostAddresses returns the hierarchical addresses of a host in the
// paper's tuple notation, plus the IPv4 encoding when it fits the 6-bit
// packing.
func (t *Topology) HostAddresses(hostName string) ([]string, error) {
	h, err := t.host(hostName)
	if err != nil {
		return nil, err
	}
	plan, err := t.addressPlan()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, a := range plan.AddressesOf(h) {
		s := a.String()
		if ip, err := a.IPv4(); err == nil {
			s += " = " + ip
		}
		out = append(out, s)
	}
	return out, nil
}

// RoutingTables renders a switch's downhill and uphill tables in the
// style of the paper's Table 2.
func (t *Topology) RoutingTables(switchName string) (string, error) {
	n, ok := t.net.Graph().FindNode(switchName)
	if !ok {
		return "", fmt.Errorf("dard: unknown switch %q", switchName)
	}
	plan, err := t.addressPlan()
	if err != nil {
		return "", err
	}
	tables := plan.TablesOf(n.ID)
	if tables == nil {
		return "", fmt.Errorf("dard: %q has no routing tables (is it a host?)", switchName)
	}
	return fmt.Sprintf("%s (%s)\n%s", switchName, t.net.Name(), tables.Format(t.net.Graph())), nil
}

// FlowTables renders a switch's OpenFlow-style initialization program
// (§3.1): downhill rules in table 0 (destination-matched), uphill rules
// in table 1 (source-matched), longest prefixes first.
func (t *Topology) FlowTables(switchName string) (string, error) {
	n, ok := t.net.Graph().FindNode(switchName)
	if !ok {
		return "", fmt.Errorf("dard: unknown switch %q", switchName)
	}
	plan, err := t.addressPlan()
	if err != nil {
		return "", err
	}
	for _, prog := range plan.FlowTablePrograms() {
		if prog.Switch == switchName {
			return prog.String(), nil
		}
	}
	_ = n
	return "", fmt.Errorf("dard: %q has no flow tables (is it a host?)", switchName)
}

// TotalFlowRules counts the rules the one-time NOX-style initializer
// installs network-wide. It returns 0 if the addressing plan cannot be
// built (construction validates the topologies this facade offers, so
// that does not happen in practice).
func (t *Topology) TotalFlowRules() int {
	plan, err := t.addressPlan()
	if err != nil {
		return 0
	}
	return plan.TotalRules()
}

// PathsBetween describes the equal-cost paths between two hosts'
// attachment switches as hop sequences, one line per path.
func (t *Topology) PathsBetween(srcHost, dstHost string) (string, error) {
	s, err := t.host(srcHost)
	if err != nil {
		return "", err
	}
	d, err := t.host(dstHost)
	if err != nil {
		return "", err
	}
	g := t.net.Graph()
	var b strings.Builder
	ps := t.net.PathSet(t.net.ToROf(s), t.net.ToROf(d))
	var links []topology.LinkID
	for i := 0; i < ps.Len(); i++ {
		fmt.Fprintf(&b, "%-24s", ps.Via(i))
		links = ps.AppendLinks(i, links[:0])
		for j, l := range links {
			if j == 0 {
				b.WriteString(g.Node(g.Link(l).From).Name)
			}
			b.WriteString(" -> " + g.Node(g.Link(l).To).Name)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

func (t *Topology) host(name string) (topology.NodeID, error) {
	n, ok := t.net.Graph().FindNode(name)
	if !ok {
		return 0, fmt.Errorf("dard: unknown host %q", name)
	}
	if n.Kind != topology.Host {
		// Speak the family's language: paths run between ToRs on the tree
		// families, routers on a dragonfly, servers on a DCell.
		return 0, fmt.Errorf("dard: %q is a %s, not a host; paths run between the %ss hosts attach to",
			name, n.Kind, t.net.AttachNoun())
	}
	return n.ID, nil
}
