package addressing

import (
	"fmt"
	"sort"
	"strings"

	"dard/internal/topology"
)

// Entry is one routing table row: a prefix and the outgoing link.
type Entry struct {
	Prefix Prefix
	Link   topology.LinkID
}

// Tables holds a switch's two forwarding tables (§2.3): the downhill table
// keeps the prefixes the switch allocated to downstream devices; the
// uphill table keeps the prefixes allocated to it from upstream switches.
// A core switch has an empty uphill table.
type Tables struct {
	Downhill []Entry
	Uphill   []Entry
}

func appendEntry(entries []Entry, e Entry) []Entry {
	for _, x := range entries {
		if x.Prefix == e.Prefix && x.Link == e.Link {
			return entries // dedupe identical rows
		}
	}
	return append(entries, e)
}

// sort orders entries longest-prefix-first so a linear scan implements
// longest-prefix matching.
func (t *Tables) sort() {
	byLen := func(entries []Entry) {
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].Prefix.Len != entries[j].Prefix.Len {
				return entries[i].Prefix.Len > entries[j].Prefix.Len
			}
			return less(entries[i].Prefix.Addr, entries[j].Prefix.Addr)
		})
	}
	byLen(t.Downhill)
	byLen(t.Uphill)
}

func less(a, b Address) bool {
	for i := 0; i < Groups; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LookupDownhill returns the longest downhill match for the address.
func (t *Tables) LookupDownhill(a Address) (topology.LinkID, bool) {
	return lookup(t.Downhill, a)
}

// LookupUphill returns the longest uphill match for the address.
func (t *Tables) LookupUphill(a Address) (topology.LinkID, bool) {
	return lookup(t.Uphill, a)
}

func lookup(entries []Entry, a Address) (topology.LinkID, bool) {
	for _, e := range entries {
		if e.Prefix.Matches(a) {
			return e.Link, true
		}
	}
	return 0, false
}

// Forward implements the paper's downhill-uphill-looking-up scheme: a
// switch first looks the destination address up in the downhill table; on
// a miss it looks the source address up in the uphill table.
func (t *Tables) Forward(src, dst Address) (topology.LinkID, error) {
	if l, ok := t.LookupDownhill(dst); ok {
		return l, nil
	}
	if l, ok := t.LookupUphill(src); ok {
		return l, nil
	}
	return 0, fmt.Errorf("no route: dst %v missed downhill, src %v missed uphill", dst, src)
}

// Format renders both tables in the paper's Table 2 style using IPv4
// notation when the addresses fit the 6-bit packing, tuple notation
// otherwise.
func (t *Tables) Format(g *topology.Graph) string {
	var b strings.Builder
	render := func(name string, entries []Entry) {
		fmt.Fprintf(&b, "%s table:\n", name)
		for _, e := range entries {
			pfx := e.Prefix.String()
			if ip, err := e.Prefix.IPv4(); err == nil {
				pfx = ip
			}
			fmt.Fprintf(&b, "  %-22s -> %s\n", pfx, g.Node(g.Link(e.Link).To).Name)
		}
	}
	render("downhill", t.Downhill)
	render("uphill", t.Uphill)
	return b.String()
}

// FlatTable derives the single destination-only routing table that
// suffices for fat-trees (paper Table 3): the downhill rows plus, for each
// uphill prefix, a row keyed by that root prefix. It is not valid for
// generic multi-rooted trees such as Clos networks.
func (t *Tables) FlatTable() []Entry {
	flat := make([]Entry, 0, len(t.Downhill)+len(t.Uphill))
	flat = append(flat, t.Downhill...)
	flat = append(flat, t.Uphill...)
	sort.SliceStable(flat, func(i, j int) bool {
		if flat[i].Prefix.Len != flat[j].Prefix.Len {
			return flat[i].Prefix.Len > flat[j].Prefix.Len
		}
		return less(flat[i].Prefix.Addr, flat[j].Prefix.Addr)
	})
	return flat
}

// Route walks a packet with the given source/destination addresses from
// the source host to the destination host, returning the sequence of links
// traversed (including the host's first and last hop). It errors if a
// switch has no matching table entry or if the walk exceeds the graph
// diameter (a routing loop).
func (p *Plan) Route(srcHost, dstHost topology.NodeID, src, dst Address) ([]topology.LinkID, error) {
	g := p.net.Graph()
	var links []topology.LinkID
	first := p.net.HostUplink(srcHost)
	links = append(links, first)
	at := g.Link(first).To
	const maxHops = 16
	for hop := 0; hop < maxHops; hop++ {
		if at == dstHost {
			return links, nil
		}
		t := p.tables[at]
		if t == nil {
			return nil, fmt.Errorf("no tables at %s", g.Node(at).Name)
		}
		l, err := t.Forward(src, dst)
		if err != nil {
			return nil, fmt.Errorf("at %s: %w", g.Node(at).Name, err)
		}
		links = append(links, l)
		at = g.Link(l).To
	}
	return nil, fmt.Errorf("routing loop: %v -> %v did not terminate in %d hops", src, dst, maxHops)
}
