package experiments

import (
	"fmt"

	"dard"
	"dard/internal/metrics"
	"dard/internal/parallel"
)

// FailureRecovery exercises the fault-injection extension on the testbed
// fabric: a core uplink (aggr1_1 -> core1) fails a quarter into the
// arrival window and repairs at three quarters, under stride traffic.
// It is not a paper artifact — the paper's testbed never breaks a link —
// but the scenario the paper motivates: DARD's monitors detect the dead
// path and evacuate its elephants, while ECMP strands them until the
// repair. Both engines run the same schedule; the table shows stranded
// flows, mean transfer time, and DARD's shifts per cell.
func FailureRecovery(p Params) (*Result, error) {
	p = p.withDefaults()
	topo, err := testbedSpec().Build()
	if err != nil {
		return nil, err
	}
	type cell struct {
		engine dard.Engine
		sched  dard.Scheduler
	}
	cells := []cell{
		{dard.EngineFlow, dard.SchedulerECMP},
		{dard.EngineFlow, dard.SchedulerDARD},
		{dard.EnginePacket, dard.SchedulerECMP},
		{dard.EnginePacket, dard.SchedulerDARD},
	}
	reports := make([]*dard.Report, len(cells))
	err = parallel.ForEach(p.Workers, len(cells), func(i int) error {
		c := cells[i]
		// Flow cells use the Figure 4 testbed load (fixed like its
		// sweep): moderate enough that the blackout, not saturation,
		// dominates the comparison. Packet cells follow the suite's
		// packet-engine scale.
		duration, fileMB, rate := 20.0, 8.0, 0.4
		if c.engine == dard.EnginePacket {
			duration = p.PacketDuration
			fileMB = p.PacketFileMB
			rate = p.PacketRate
		}
		scn := dard.Scenario{
			Topo:           topo,
			Scheduler:      c.sched,
			Engine:         c.engine,
			Pattern:        dard.PatternStride,
			RatePerHost:    rate,
			Duration:       duration,
			FileSizeMB:     fileMB,
			Seed:           p.Seed,
			IntraWorkers:   p.IntraWorkers,
			ElephantAgeSec: 0.5,
			DARD:           quickDARDTuning(),
			LinkFailures: []dard.LinkFailure{
				{AtSec: 0.25 * duration, From: "aggr1_1", To: "core1"},
				{AtSec: 0.75 * duration, From: "aggr1_1", To: "core1", Repair: true},
			},
			TraceDir: p.traceDir("failure", string(c.engine)),
		}
		rep, err := scn.Run()
		if err != nil {
			return fmt.Errorf("%s/%s: %w", c.engine, c.sched, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable("blackout at 25%, repair at 75% of the arrival window (stride, p=4 fat-tree @100Mbps)",
		"engine/scheduler", "flows", "unfinished", "mean s", "shifts")
	values := make(map[string]float64)
	for i, c := range cells {
		rep := reports[i]
		label := fmt.Sprintf("%s/%s", c.engine, rep.Scheduler)
		tbl.AddRowf(label, rep.Flows, rep.Unfinished, rep.MeanTransferTime(), rep.DARDShifts)
		values[label+"/unfinished"] = float64(rep.Unfinished)
		values[label+"/mean_s"] = rep.MeanTransferTime()
		values[label+"/shifts"] = float64(rep.DARDShifts)
	}
	return &Result{
		ID:     "failure",
		Title:  "failure recovery: link blackout and repair under ECMP vs DARD",
		Text:   tbl.String(),
		Values: values,
	}, nil
}
