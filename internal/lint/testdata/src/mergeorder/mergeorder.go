// Package mergeorder exercises the completion-order merge analyzer:
// per-worker results drained from a channel arrive in scheduling
// order, so feeding them into an order-sensitive merge breaks
// serial==parallel bit-identity.
package mergeorder

import "sort"

type result struct {
	slot  int
	flows []int
	total float64
}

// drainAppend is the hazard in its plainest form: completion-order
// append.
func drainAppend(results chan result) []int {
	var flows []int
	for r := range results { // want `channel drain merges worker results in completion order \(append to flows`
		flows = append(flows, r.flows...)
	}
	return flows
}

// drainAccumulate sums floats in arrival order: FP addition is not
// associative.
func drainAccumulate(results chan result) float64 {
	var sum float64
	for r := range results { // want `channel drain merges worker results in completion order \(floating-point accumulation into sum`
		sum += r.total
	}
	return sum
}

// drainForward re-emits results in completion order.
func drainForward(results chan result, out chan<- result) {
	for r := range results { // want `channel drain merges worker results in completion order \(channel send`
		out <- r
	}
}

// drainPerSlot is the canonical repair: each worker owns its slot, so
// the drain only parks results and a stable loop does the merge.
func drainPerSlot(results chan result, n int) []float64 {
	out := make([]float64, n)
	for r := range results {
		out[r.slot] = r.total
	}
	return out
}

// drainThenSort collects in completion order but sorts before use, so
// the arrival order is moot.
func drainThenSort(results chan result) []int {
	var flows []int
	for r := range results {
		flows = append(flows, r.flows...)
	}
	sort.Ints(flows)
	return flows
}

// countedReceive is the counted-loop variant of the hazard: the loop
// order is deterministic, but the received values are not.
func countedReceive(results chan result, n int) []int {
	var flows []int
	for i := 0; i < n; i++ { // want `loop receives worker results in completion order and feeds an order-sensitive effect \(append to flows`
		r := <-results
		flows = append(flows, r.flows...)
	}
	return flows
}

// countedDirect accumulates straight off the channel.
func countedDirect(parts chan float64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ { // want `loop receives worker results in completion order and feeds an order-sensitive effect \(floating-point accumulation into sum`
		sum += <-parts
	}
	return sum
}

// countedPerSlot parks each received result in the slot its message
// names — order-free.
func countedPerSlot(results chan result, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		r := <-results
		out[r.slot] = r.total
	}
	return out
}

// countedInvariant shows that a counted loop's own effects stay legal:
// nothing here depends on what the receives yield.
func countedInvariant(ticks chan struct{}, xs []float64) float64 {
	var sum float64
	for i := 0; i < len(xs); i++ {
		<-ticks
		sum += xs[i]
	}
	return sum
}

// sliceMerge ranges a stable slice — the engine's compSpans shape —
// and is the pattern the analyzer wants code to converge on.
func sliceMerge(results []result) []int {
	var flows []int
	for _, r := range results {
		flows = append(flows, r.flows...)
	}
	return flows
}

// suppressed documents a drain whose order is provably harmless.
func suppressed(results chan result) []int {
	var flows []int
	//dardlint:mergeorder fixture: consumer treats the list as a set and sorts before use
	for r := range results {
		flows = append(flows, r.flows...)
	}
	return flows
}
