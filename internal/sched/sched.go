// Package sched implements the random flow-level scheduling baselines the
// paper compares DARD against (§4): ECMP, which hashes a flow's 4-tuple
// onto one of the equal-cost paths permanently, and periodic VLB (pVLB),
// which re-picks a random path every few seconds to break permanent
// collisions.
package sched

import "dard/internal/flowsim"

// ECMP is Equal-Cost-Multi-Path forwarding (RFC 2992): a packet's path is
// a hash of selected header fields, so a flow sticks to one randomly
// chosen path for its whole life. Elephant flows that collide on a link
// stay collided — the failure mode motivating DARD.
type ECMP struct{}

var _ flowsim.Controller = ECMP{}

// Name implements flowsim.Controller.
func (ECMP) Name() string { return "ECMP" }

// Start implements flowsim.Controller.
func (ECMP) Start(*flowsim.Sim) {}

// AssignPath hashes the flow's header fields modulo the path count, the
// paper's testbed hashing function (§4.2). The per-connection ephemeral
// ports are derived from the seed and flow ID rather than drawn from the
// shared RNG, so initial assignments are identical across schedulers.
func (ECMP) AssignPath(s *flowsim.Sim, f *flowsim.Flow) int {
	return PathHash(s.Seed(), 0xec3f, f.ID, int32(f.Src), int32(f.Dst),
		len(s.Paths(f.SrcToR, f.DstToR)))
}

// DefaultVLBInterval is pVLB's re-pick period in seconds.
const DefaultVLBInterval = 5.0

// PVLB is the paper's periodical Valiant Load Balancing variant (§4.2): a
// flow picks a random core switch (in a Clos network, a random
// aggregation pair) and re-picks every Interval seconds, so collisions
// are random but never permanent.
type PVLB struct {
	// Interval is the re-pick period in seconds; zero means
	// DefaultVLBInterval.
	Interval float64
}

var _ flowsim.Controller = (*PVLB)(nil)
var _ flowsim.FlowObserver = (*PVLB)(nil)

// Name implements flowsim.Controller.
func (*PVLB) Name() string { return "pVLB" }

// Start implements flowsim.Controller.
func (*PVLB) Start(*flowsim.Sim) {}

// AssignPath picks the flow's hash path, like ECMP; randomness enters
// through the periodic re-picks.
func (*PVLB) AssignPath(s *flowsim.Sim, f *flowsim.Flow) int {
	return PathHash(s.Seed(), 0xec3f, f.ID, int32(f.Src), int32(f.Dst),
		len(s.Paths(f.SrcToR, f.DstToR)))
}

// OnArrival installs the per-flow re-pick timer chain.
func (v *PVLB) OnArrival(s *flowsim.Sim, f *flowsim.Flow) {
	interval := v.Interval
	if interval <= 0 {
		interval = DefaultVLBInterval
	}
	n := len(s.Paths(f.SrcToR, f.DstToR))
	if n <= 1 {
		return
	}
	var repick func()
	repick = func() {
		if !s.IsActive(f) {
			return
		}
		// SetPath ignores a re-pick of the current path, matching a VLB
		// source that happens to draw the same core again.
		if err := s.SetPath(f, s.Rand().Intn(n)); err == nil {
			s.After(interval, repick)
		}
	}
	s.After(interval, repick)
}

// OnDepart implements flowsim.FlowObserver; the timer chain notices the
// departure on its next firing.
func (*PVLB) OnDepart(*flowsim.Sim, *flowsim.Flow) {}

// Static always assigns the first path; a degenerate baseline useful in
// tests and as the worst case for collision behaviour.
type Static struct{}

var _ flowsim.Controller = Static{}

// Name implements flowsim.Controller.
func (Static) Name() string { return "static" }

// Start implements flowsim.Controller.
func (Static) Start(*flowsim.Sim) {}

// AssignPath implements flowsim.Controller.
func (Static) AssignPath(*flowsim.Sim, *flowsim.Flow) int { return 0 }
