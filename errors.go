package dard

import (
	"context"
	"errors"
	"fmt"

	"dard/internal/flowsim"
)

// ErrCanceled marks a run stopped by context cancellation. Errors from
// RunContext and Session.Run match both this and the context's own error
// (context.Canceled or context.DeadlineExceeded) under errors.Is.
var ErrCanceled = errors.New("dard: run canceled")

// ErrPaused is returned by Session.Run when a requested pause took
// effect. The session's state is intact: Snapshot it, call Run again to
// continue, or both. It aliases the engine's sentinel, so errors.Is
// works across the facade boundary.
var ErrPaused = flowsim.ErrPaused

// ValidationError reports one invalid Scenario field from Validate. The
// message matches what Run would produce for the same mistake; Field
// names the offending Scenario field so callers (the serving layer's
// HTTP 400 payloads) can point at it without parsing the message.
type ValidationError struct {
	Field string
	Err   error
}

func (e *ValidationError) Error() string { return e.Err.Error() }

func (e *ValidationError) Unwrap() error { return e.Err }

// wrapCanceled tags engine errors caused by ctx's cancellation with
// ErrCanceled; other errors pass through unchanged.
func wrapCanceled(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}
