// Package tcp implements TCP New Reno endpoints over the simnet
// packet-level simulator: slow start, congestion avoidance, fast
// retransmit on three duplicate ACKs, New Reno fast recovery with partial
// ACKs, and an RTO estimator with exponential backoff. The paper's ns-2
// simulations use TCP New Reno for all elephant transfers (§3.2); the
// per-flow retransmission counters feed Figure 14's metric.
package tcp

import (
	"fmt"
	"math"

	"dard/internal/fpcmp"
	"dard/internal/simnet"
	"dard/internal/topology"
	"dard/internal/trace"
)

// Options tunes a connection. The zero value gives standard defaults:
// 1460-byte MSS, 40-byte headers, initial cwnd of 2 segments, and the
// conventional 200 ms minimum RTO (a smaller floor sits below the
// queueing RTT of a congested path and livelocks the sender in spurious
// timeouts).
type Options struct {
	// MSSBytes is the maximum segment payload.
	MSSBytes float64
	// InitialCwnd is the initial congestion window in segments.
	InitialCwnd float64
	// InitialSsthresh is the initial slow-start threshold in segments.
	InitialSsthresh float64
	// MaxCwndSegs caps the congestion window (the receiver's advertised
	// window); bounds NewReno's recovery inflation.
	MaxCwndSegs float64
	// MinRTO floors the retransmission timeout (seconds).
	MinRTO float64
	// MaxRTO caps the backed-off retransmission timeout (seconds).
	MaxRTO float64
}

func (o *Options) applyDefaults() {
	if o.MSSBytes <= 0 {
		o.MSSBytes = 1460
	}
	if o.InitialCwnd <= 0 {
		o.InitialCwnd = 2
	}
	if o.InitialSsthresh <= 0 {
		o.InitialSsthresh = 1 << 20
	}
	if o.MaxCwndSegs <= 0 {
		o.MaxCwndSegs = 256
	}
	if o.MinRTO <= 0 {
		o.MinRTO = 0.2
	}
	if o.MaxRTO <= 0 {
		o.MaxRTO = 2.0
	}
}

// Conn is one TCP New Reno transfer: the sender and receiver endpoints of
// a single flow, folded together (the simulator delivers data packets to
// the receiver half and ACKs to the sender half).
type Conn struct {
	net  *simnet.Net
	g    *topology.Graph
	id   int
	opts Options

	route   []topology.LinkID
	mssBits float64
	hdrBits float64

	totalSegs int

	// Sender state.
	cwnd       float64
	ssthresh   float64
	nextSeq    int
	sndUna     int
	dupAcks    int
	inRecovery bool
	recover    int

	srtt, rttvar, rto float64
	rttSeq            int
	rttSentAt         float64
	rttPending        bool
	rtoTimer          simnet.Timer
	rtoArmed          bool

	// Receiver state.
	received map[int]bool
	rcvNext  int

	// RoutePicker, when set, chooses the route of every outgoing data
	// packet (per-packet load balancing, e.g. TeXCP). When nil the
	// connection's current route is used for every packet.
	RoutePicker func() []topology.LinkID

	// Tracer, when set, receives a Retransmit event for every
	// retransmitted segment. Nil means no tracing.
	Tracer trace.Tracer

	// Stats.
	Retx      int
	started   bool
	done      bool
	StartTime float64
	EndTime   float64
	onDone    func(*Conn)

	// PathSwitches counts SetRoute calls that changed the route.
	PathSwitches int
}

// NewConn creates a transfer of sizeBits from the source to the
// destination of the given initial route. onDone fires once when the last
// byte is acknowledged.
func NewConn(net *simnet.Net, id int, route []topology.LinkID, sizeBits float64, opts Options, onDone func(*Conn)) (*Conn, error) {
	if net == nil {
		return nil, fmt.Errorf("tcp: nil net")
	}
	if sizeBits <= 0 {
		return nil, fmt.Errorf("tcp: non-positive transfer size %g", sizeBits)
	}
	opts.applyDefaults()
	c := &Conn{
		net:      net,
		g:        net.Topology().Graph(),
		id:       id,
		opts:     opts,
		route:    route,
		mssBits:  opts.MSSBytes * 8,
		hdrBits:  net.PacketHeaderBits,
		cwnd:     opts.InitialCwnd,
		ssthresh: opts.InitialSsthresh,
		rto:      0.2,
		received: make(map[int]bool),
		onDone:   onDone,
	}
	c.totalSegs = int(math.Ceil(sizeBits / c.mssBits))
	return c, nil
}

// ID returns the flow ID.
func (c *Conn) ID() int { return c.id }

// Done reports whether the transfer completed.
func (c *Conn) Done() bool { return c.done }

// TotalSegs reports the number of unique segments in the transfer.
func (c *Conn) TotalSegs() int { return c.totalSegs }

// RetxRate is Figure 14's metric: retransmitted over unique packets.
func (c *Conn) RetxRate() float64 { return float64(c.Retx) / float64(c.totalSegs) }

// TransferTime returns EndTime-StartTime once done.
func (c *Conn) TransferTime() float64 {
	if !c.done {
		return math.NaN()
	}
	return c.EndTime - c.StartTime
}

// Route returns the current data route.
func (c *Conn) Route() []topology.LinkID { return c.route }

// SetRoute switches the connection onto a new source route; future
// packets (including retransmissions) use it. In-flight packets continue
// on the old route, which is what reorders segments after a DARD path
// shift.
func (c *Conn) SetRoute(route []topology.LinkID) {
	if linksEqual(c.route, route) {
		return
	}
	c.route = route
	if c.started && !c.done {
		c.PathSwitches++
	}
}

func linksEqual(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Start begins transmitting at the current simulation time.
func (c *Conn) Start() {
	c.started = true
	c.StartTime = c.net.K.Now()
	c.sendAvailable()
}

func (c *Conn) flight() int { return c.nextSeq - c.sndUna }

// sendAvailable transmits new segments while the congestion window has
// room.
func (c *Conn) sendAvailable() {
	for c.nextSeq < c.totalSegs && float64(c.flight()) < c.cwnd {
		c.sendSegment(c.nextSeq, false)
		c.nextSeq++
	}
	if c.flight() > 0 {
		c.armRTO()
	}
}

// sendSegment emits one data segment; retx marks retransmissions.
func (c *Conn) sendSegment(seq int, retx bool) {
	route := c.route
	if c.RoutePicker != nil {
		route = c.RoutePicker()
	}
	if retx {
		c.Retx++
		if c.Tracer != nil && c.Tracer.Enabled() {
			c.Tracer.Emit(trace.Event{
				T: c.net.K.Now(), Kind: trace.KindRetransmit,
				Flow: int32(c.id), Link: -1, A: int64(seq),
			})
		}
	} else if !c.rttPending {
		// Karn's algorithm: only time segments sent once.
		c.rttPending = true
		c.rttSeq = seq
		c.rttSentAt = c.net.K.Now()
	}
	c.net.Send(&simnet.Packet{
		FlowID:   c.id,
		Seq:      seq,
		SizeBits: c.mssBits + c.hdrBits,
		Route:    route,
		Retx:     retx,
	})
}

// Deliver dispatches a packet of this flow to the right endpoint half.
func (c *Conn) Deliver(p *simnet.Packet) {
	if p.Ack {
		c.onAck(p.AckNum)
	} else {
		c.onData(p)
	}
}

// onData is the receiver: record the segment, advance the cumulative
// pointer, and acknowledge every arrival (no delayed ACKs, as in the
// paper's ns-2 setup).
func (c *Conn) onData(p *simnet.Packet) {
	if p.Seq >= c.rcvNext {
		c.received[p.Seq] = true
	}
	for c.received[c.rcvNext] {
		delete(c.received, c.rcvNext)
		c.rcvNext++
	}
	// ACK travels the reverse of the data packet's actual route.
	rev := make([]topology.LinkID, 0, len(p.Route))
	for i := len(p.Route) - 1; i >= 0; i-- {
		rev = append(rev, c.g.Reverse(p.Route[i]))
	}
	c.net.Send(&simnet.Packet{
		FlowID:   c.id,
		Ack:      true,
		AckNum:   c.rcvNext,
		SizeBits: c.hdrBits,
		Route:    rev,
	})
}

// onAck is the sender's New Reno ACK processing.
func (c *Conn) onAck(ack int) {
	if c.done {
		return
	}
	switch {
	case ack > c.sndUna:
		newly := ack - c.sndUna
		c.sndUna = ack
		if c.rttPending && ack > c.rttSeq {
			c.sampleRTT(c.net.K.Now() - c.rttSentAt)
			c.rttPending = false
		}
		if c.inRecovery {
			if ack > c.recover {
				// Full ACK: leave fast recovery.
				c.inRecovery = false
				c.cwnd = c.ssthresh
				c.dupAcks = 0
			} else {
				// Partial ACK: retransmit the next hole, deflate.
				c.sendSegment(c.sndUna, true)
				c.cwnd = math.Max(c.cwnd-float64(newly)+1, 1)
			}
		} else {
			c.dupAcks = 0
			if c.cwnd < c.ssthresh {
				c.cwnd += float64(newly) // slow start
			} else {
				c.cwnd += float64(newly) / c.cwnd // congestion avoidance
			}
			c.cwnd = math.Min(c.cwnd, c.opts.MaxCwndSegs)
		}
		if c.sndUna >= c.totalSegs {
			c.finish()
			return
		}
		c.armRTO()
		c.sendAvailable()

	case ack == c.sndUna:
		if c.inRecovery {
			// Window inflation per duplicate, bounded by the receive
			// window so long recoveries cannot pump the flight
			// arbitrarily high.
			c.cwnd = math.Min(c.cwnd+1, c.opts.MaxCwndSegs)
			c.sendAvailable()
			return
		}
		c.dupAcks++
		if c.dupAcks == 3 {
			if DebugTrace != nil {
				DebugTrace(c.id, c.net.K.Now(), "FRTX", c.sndUna, c.nextSeq)
			}
			// Fast retransmit.
			c.ssthresh = math.Max(float64(c.flight())/2, 2)
			c.cwnd = c.ssthresh + 3
			c.inRecovery = true
			c.recover = c.nextSeq
			c.sendSegment(c.sndUna, true)
		}
	}
}

func (c *Conn) sampleRTT(sample float64) {
	if fpcmp.IsZero(c.srtt) {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		const alpha, beta = 0.125, 0.25
		diff := math.Abs(c.srtt - sample)
		c.rttvar = (1-beta)*c.rttvar + beta*diff
		c.srtt = (1-alpha)*c.srtt + alpha*sample
	}
	c.rto = math.Min(math.Max(c.srtt+4*c.rttvar, c.opts.MinRTO), c.opts.MaxRTO)
}

func (c *Conn) armRTO() {
	if c.rtoArmed {
		c.rtoTimer.Cancel()
	}
	c.rtoArmed = true
	c.rtoTimer = c.net.K.After(c.rto, c.onRTO)
}

// DebugTrace, when set, receives congestion events (testing aid).
var DebugTrace func(id int, now float64, event string, a, b int)

// onRTO is the retransmission timeout: collapse to a one-segment window,
// retransmit the first hole, and enter recovery so that every subsequent
// partial ACK clocks out the next hole. Segments the receiver already
// buffered are never resent: cumulative ACKs absorb them.
func (c *Conn) onRTO() {
	c.rtoArmed = false
	if c.done || c.flight() <= 0 {
		return
	}
	if DebugTrace != nil {
		DebugTrace(c.id, c.net.K.Now(), "RTO", c.sndUna, c.nextSeq)
	}
	c.ssthresh = math.Max(float64(c.flight())/2, 2)
	c.cwnd = 1
	c.inRecovery = true
	c.recover = c.nextSeq
	c.dupAcks = 0
	c.rttPending = false
	c.rto = math.Min(c.rto*2, c.opts.MaxRTO)
	c.sendSegment(c.sndUna, true)
	c.armRTO()
}

func (c *Conn) finish() {
	c.done = true
	c.EndTime = c.net.K.Now()
	if c.rtoArmed {
		c.rtoTimer.Cancel()
		c.rtoArmed = false
	}
	if c.onDone != nil {
		c.onDone(c)
	}
}

// State is a diagnostic snapshot of the sender.
type State struct {
	Cwnd       float64
	Ssthresh   float64
	SndUna     int
	NextSeq    int
	DupAcks    int
	InRecovery bool
	RTO        float64
	RTOArmed   bool
}

// State returns a diagnostic snapshot of the sender's congestion control.
func (c *Conn) State() State {
	return State{
		Cwnd:       c.cwnd,
		Ssthresh:   c.ssthresh,
		SndUna:     c.sndUna,
		NextSeq:    c.nextSeq,
		DupAcks:    c.dupAcks,
		InRecovery: c.inRecovery,
		RTO:        c.rto,
		RTOArmed:   c.rtoArmed,
	}
}

// Dispatcher routes delivered packets to their connections; install its
// Deliver method as the simnet deliver callback.
type Dispatcher struct {
	conns map[int]*Conn
}

// NewDispatcher creates an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{conns: make(map[int]*Conn)}
}

// Register adds a connection.
func (d *Dispatcher) Register(c *Conn) { d.conns[c.id] = c }

// Deliver implements the simnet callback.
func (d *Dispatcher) Deliver(p *simnet.Packet) {
	if c, ok := d.conns[p.FlowID]; ok {
		c.Deliver(p)
	}
}

// Conn returns a registered connection.
func (d *Dispatcher) Conn(id int) (*Conn, bool) {
	c, ok := d.conns[id]
	return c, ok
}
