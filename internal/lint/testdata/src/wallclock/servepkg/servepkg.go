// Package serve is a wallclock fixture for the serving-layer scope:
// clock reads are legal there (HTTP deadlines, submission timestamps),
// but blocking sleeps, leaky tickers, and the process-global generator
// are still flagged.
package serve

import (
	"math/rand"
	"time"
)

func legal() time.Time {
	t0 := time.Now() // the serving layer may read the clock
	_ = time.Since(t0)
	_ = time.After(time.Second)
	tm := time.NewTimer(time.Second)
	tm.Stop()
	time.AfterFunc(time.Second, func() {}).Stop()
	return t0
}

func flagged(seed int64) {
	time.Sleep(time.Millisecond) // want `time.Sleep blocks or leaks inside serving package`
	_ = time.Tick(time.Second)   // want `time.Tick blocks or leaks inside serving package`
	_ = rand.Intn(10)            // want `rand.Intn uses the process-global generator inside serving package`
	rng := rand.New(rand.NewSource(seed)) // constructors and methods stay legal
	_ = rng.Intn(10)
}
