package dard

import (
	"fmt"
	"math"
)

// Validate checks the scenario without building a topology or running
// anything, so a serving layer can reject a bad submission before
// committing a worker to it. Every failure is a *ValidationError naming
// the offending field, with the same message Run would eventually
// produce for the same mistake. A nil return means the scenario's shape
// is sound; name resolution that needs the built topology (link-failure
// endpoints) still happens inside Run.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	invalid := func(field string, format string, args ...any) error {
		return &ValidationError{Field: field, Err: fmt.Errorf(format, args...)}
	}

	switch s.Engine {
	case EngineFlow, EnginePacket:
	default:
		return invalid("Engine", "dard: unknown engine %q", s.Engine)
	}
	switch s.Scheduler {
	case SchedulerECMP, SchedulerPVLB, SchedulerDARD:
	case SchedulerAnnealing:
		if s.Engine == EnginePacket {
			return invalid("Scheduler", "dard: the centralized scheduler runs on Engine: EngineFlow")
		}
	case SchedulerTeXCP:
		if s.Engine == EngineFlow {
			return invalid("Scheduler", "dard: TeXCP requires Engine: EnginePacket (per-packet splitting)")
		}
	default:
		return invalid("Scheduler", "dard: unknown scheduler %q", s.Scheduler)
	}
	switch s.Pattern {
	case PatternRandom, PatternStaggered, PatternStride:
	default:
		return invalid("Pattern", "dard: unknown pattern %q", s.Pattern)
	}
	if s.Topo == nil {
		switch s.Topology.Kind {
		case FatTree, "", Clos, ThreeTier, Dragonfly, DCell:
		default:
			return invalid("Topology", "dard: unknown topology kind %q", s.Topology.Kind)
		}
	}

	if !(s.RatePerHost > 0) || math.IsInf(s.RatePerHost, 0) {
		return invalid("RatePerHost", "dard: rate per host %g must be positive and finite", s.RatePerHost)
	}
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) {
		return invalid("Duration", "dard: duration %g must be finite", s.Duration)
	}
	if !(s.FileSizeMB > 0) || math.IsInf(s.FileSizeMB, 0) {
		return invalid("FileSizeMB", "dard: file size %g MB must be positive and finite", s.FileSizeMB)
	}
	if math.IsNaN(s.MaxTimeSec) || math.IsInf(s.MaxTimeSec, 0) || s.MaxTimeSec < 0 {
		return invalid("MaxTimeSec", "dard: max time %g must be a non-negative finite duration", s.MaxTimeSec)
	}
	if math.IsNaN(s.WindowSec) || math.IsInf(s.WindowSec, 0) {
		return invalid("WindowSec", "dard: metrics window %g must be finite", s.WindowSec)
	}

	if s.Steady {
		if s.Engine != EngineFlow {
			return invalid("Steady", "dard: steady mode requires Engine: EngineFlow (open arrivals stream through the fluid engine)")
		}
		if s.Duration <= 0 && !(s.MaxTimeSec > 0) {
			return invalid("MaxTimeSec", "dard: an unbounded steady run (Duration <= 0) needs MaxTimeSec to end")
		}
	} else if s.Duration <= 0 {
		// The batch generator requires a positive arrival window; only the
		// steady stream may be unbounded.
		return invalid("Duration", "workload: rate %g and duration %g must be positive", s.RatePerHost, s.Duration)
	}

	if err := s.DARD.faults(s.Seed).Validate(); err != nil {
		return &ValidationError{Field: "DARD", Err: err}
	}
	for _, lf := range s.LinkFailures {
		if math.IsNaN(lf.AtSec) || math.IsInf(lf.AtSec, 0) || lf.AtSec < 0 {
			return invalid("LinkFailures", "dard: link failure at invalid time %g", lf.AtSec)
		}
	}
	return nil
}
